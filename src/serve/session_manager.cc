#include "serve/session_manager.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ptk::serve {

namespace {

obs::Gauge* SessionsOpenGauge() {
  static obs::Gauge* const gauge = obs::GetGauge(
      "ptk_serve_sessions_open", "Currently open serving sessions");
  return gauge;
}

engine::RankingEngine::Options EngineOptions(
    const SessionManager::Options& options,
    std::shared_ptr<const rank::MembershipCalculator> membership,
    const pbtree::PBTree* tree) {
  engine::RankingEngine::Options engine_options;
  engine_options.k = options.k;
  engine_options.order = options.order;
  engine_options.enumerator = options.enumerator;
  engine_options.fanout = options.fanout;
  engine_options.seed = options.seed;
  engine_options.rand_k_fraction = options.rand_k_fraction;
  engine_options.candidate_pool = options.candidate_pool;
  engine_options.shared_membership = std::move(membership);
  engine_options.shared_tree = tree;
  return engine_options;
}

}  // namespace

SessionManager::SessionManager(const model::Database& db,
                               const Options& options)
    : db_(&db), options_(options) {
  SessionsOpenGauge();  // register the family before any session exists
  const int k = std::clamp(options_.k, 1, db.num_objects());
  auto membership = std::make_shared<rank::MembershipCalculator>(db, k);
  // Pre-warm the lazily-built singles table now, single-threaded: after
  // this, every access from concurrent sessions is a pure read.
  if (db.num_objects() > 0) membership->ObjectTopKProbability(0);
  membership_ = std::move(membership);
  pbtree::PBTree::Options tree_options;
  tree_options.fanout = options_.fanout;
  tree_ = std::make_unique<const pbtree::PBTree>(db, tree_options);
}

util::StatusOr<std::string> SessionManager::CreateSession() {
  static obs::Counter* const created = obs::GetCounter(
      "ptk_serve_sessions_total", "Serving sessions created");
  std::shared_ptr<Session> session;
  std::string id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<int>(sessions_.size()) >= options_.max_sessions) {
      return util::Status::ResourceExhausted(
          "session table full (" + std::to_string(options_.max_sessions) +
          " open); close a session and retry");
    }
    id = "s" + std::to_string(next_id_++);
    session = std::make_shared<Session>(
        *db_, EngineOptions(options_, membership_, tree_.get()));
    sessions_.emplace(id, std::move(session));
  }
  created->Add();
  SessionsOpenGauge()->Add();
  return id;
}

std::shared_ptr<SessionManager::Session> SessionManager::Find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

util::StatusOr<std::vector<core::ScoredPair>> SessionManager::NextPairs(
    const std::string& id, int count) {
  if (count <= 0) {
    return util::Status::InvalidArgument("next_pairs: count must be > 0");
  }
  const std::shared_ptr<Session> session = Find(id);
  if (session == nullptr) {
    return util::Status::NotFound("unknown session '" + id + "'");
  }
  obs::Span span("serve.next_pairs");
  std::lock_guard<std::mutex> lock(session->mu);
  std::unique_ptr<core::PairSelector> selector =
      session->engine.MakeSelector(options_.selector);
  // Over-request so already-posted pairs can be skipped, escalating until
  // the quota is met or the selector's stream is genuinely exhausted
  // (same policy as crowd::CleaningSession).
  const int n = session->engine.working_db().num_objects();
  const long long total_pairs = static_cast<long long>(n) * (n - 1) / 2;
  std::vector<core::ScoredPair> picked;
  int request = count + static_cast<int>(session->asked.size());
  for (;;) {
    std::vector<core::ScoredPair> candidates;
    const util::Status s = selector->SelectPairs(request, &candidates);
    if (!s.ok()) return s;
    picked.clear();
    for (const core::ScoredPair& pair : candidates) {
      const auto key = std::minmax(pair.a, pair.b);
      if (session->asked.contains({key.first, key.second})) continue;
      picked.push_back(pair);
      if (static_cast<int>(picked.size()) == count) break;
    }
    if (static_cast<int>(picked.size()) == count) break;
    const bool exhausted =
        static_cast<int>(candidates.size()) < request ||
        static_cast<long long>(request) >= total_pairs;
    if (exhausted) break;
    request = static_cast<int>(
        std::min<long long>(total_pairs, 2LL * request));
  }
  if (picked.empty()) {
    return util::Status::ResourceExhausted(
        "no unasked pair left for session '" + id + "' (" +
        std::to_string(session->asked.size()) + " of " +
        std::to_string(total_pairs) + " pairs posted)");
  }
  for (const core::ScoredPair& pair : picked) {
    const auto key = std::minmax(pair.a, pair.b);
    session->asked.insert({key.first, key.second});
  }
  return picked;
}

util::StatusOr<SessionManager::PostReport> SessionManager::PostAnswers(
    const std::string& id,
    const std::vector<std::pair<model::ObjectId, model::ObjectId>>&
        answers) {
  const std::shared_ptr<Session> session = Find(id);
  if (session == nullptr) {
    return util::Status::NotFound("unknown session '" + id + "'");
  }
  obs::Span span("serve.post_answers");
  std::lock_guard<std::mutex> lock(session->mu);
  PostReport report;
  for (const auto& [smaller, larger] : answers) {
    engine::RankingEngine::FoldOutcome outcome;
    const util::Status s = session->engine.Fold(
        smaller, larger, options_.update_working, &outcome);
    if (!s.ok()) return s;
    switch (outcome) {
      case engine::RankingEngine::FoldOutcome::kApplied:
        ++report.applied;
        break;
      case engine::RankingEngine::FoldOutcome::kContradictory:
        ++report.contradictory;
        break;
      case engine::RankingEngine::FoldOutcome::kDegenerate:
        ++report.degenerate;
        break;
    }
    const auto key = std::minmax(smaller, larger);
    session->asked.insert({key.first, key.second});
  }
  report.version = session->engine.version();
  return report;
}

util::StatusOr<pw::TopKDistribution> SessionManager::Distribution(
    const std::string& id) {
  const std::shared_ptr<Session> session = Find(id);
  if (session == nullptr) {
    return util::Status::NotFound("unknown session '" + id + "'");
  }
  std::lock_guard<std::mutex> lock(session->mu);
  return session->engine.Distribution();
}

util::StatusOr<double> SessionManager::Quality(const std::string& id) {
  const std::shared_ptr<Session> session = Find(id);
  if (session == nullptr) {
    return util::Status::NotFound("unknown session '" + id + "'");
  }
  std::lock_guard<std::mutex> lock(session->mu);
  return session->engine.Quality();
}

util::Status SessionManager::Close(const std::string& id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return util::Status::NotFound("unknown session '" + id + "'");
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // An in-flight operation may still hold the session alive; unblock it
  // rather than leaving it running against a closed session.
  session->cancel.RequestCancel();
  SessionsOpenGauge()->Sub();
  return util::Status::OK();
}

SessionManager::CancelHandle SessionManager::CancelSourceFor(
    const std::string& id) {
  CancelHandle handle;
  if (std::shared_ptr<Session> session = Find(id)) {
    handle.source =
        std::shared_ptr<util::CancelSource>(session, &session->cancel);
  }
  return handle;
}

int SessionManager::open_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

}  // namespace ptk::serve
