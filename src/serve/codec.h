#ifndef PTK_SERVE_CODEC_H_
#define PTK_SERVE_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "serve/message.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk::serve {

/// Wire encodings of the typed protocol (serve/message.h). Two formats:
///
///   * kJsonLines — one JSON object per '\n'-terminated line, byte-
///     identical to the historical hand-spliced protocol: every encoded
///     response reproduces the legacy RenderResponse/ExecuteRequest
///     output exactly (%.9g doubles, field order, escapes), so existing
///     transcripts and tools/serve_smoke.golden keep matching.
///   * kBinary — length-prefixed frames (u32 little-endian byte count,
///     then the body). Integers are fixed-width little-endian, strings
///     are u32-length-prefixed bytes, doubles travel as their IEEE-754
///     bit pattern (u64) — a decoded response is bit-identical to the
///     encoded one, with no text round-trip loss.
///
/// Both decoders are strict: unknown keys/ops, out-of-range fields
/// (message.h RequestLimits), truncated or oversized frames, and
/// trailing bytes inside a frame are InvalidArgument, never silently
/// ignored. Both are total over arbitrary bytes (fuzz/frame_fuzz.cc).
enum class WireFormat : uint8_t {
  kJsonLines = 0,
  kBinary = 1,
};

std::optional<WireFormat> WireFormatFromName(std::string_view name);

/// One framing step over a byte stream. `consumed` bytes can be dropped
/// from the front of the input once the call returns; `frame` (valid only
/// when `complete`) views into the input buffer.
struct FrameSplit {
  bool complete = false;  // false: need more bytes (consumed == 0)
  size_t consumed = 0;    // bytes of input this frame used, framing included
  std::string_view frame;  // frame body (JSON: the line, no '\n')
};

class Codec {
 public:
  /// Frames larger than this are a protocol error (poison-frame guard for
  /// the binary length prefix; applied to JSON lines for symmetry).
  static constexpr size_t kMaxFrameBytes = size_t{1} << 24;  // 16 MiB

  virtual ~Codec() = default;

  virtual WireFormat format() const = 0;

  /// Extracts the next frame from `buffer` (a prefix of the byte stream).
  /// Errors are unrecoverable framing faults (oversized frame); a
  /// transport should report them and stop reading.
  virtual util::StatusOr<FrameSplit> SplitFrame(
      std::string_view buffer) const = 0;

  /// Decodes one frame body into `*request`. On failure `request->id`
  /// still carries the client correlation tag when it was decoded before
  /// the error (so the error response can echo it — the legacy behaviour
  /// for "unknown op"); every other field is unspecified.
  virtual util::Status DecodeRequest(std::string_view frame,
                                     Request* request) const = 0;

  /// Encodes a full frame, framing included (JSON: trailing '\n';
  /// binary: length prefix). Requests must be valid per ValidateRequest.
  virtual std::string EncodeRequest(const Request& request) const = 0;
  virtual std::string EncodeResponse(const Response& response) const = 0;

  virtual util::StatusOr<Response> DecodeResponse(
      std::string_view frame) const = 0;
};

class JsonCodec final : public Codec {
 public:
  WireFormat format() const override { return WireFormat::kJsonLines; }
  util::StatusOr<FrameSplit> SplitFrame(
      std::string_view buffer) const override;
  util::Status DecodeRequest(std::string_view frame,
                             Request* request) const override;
  std::string EncodeRequest(const Request& request) const override;
  std::string EncodeResponse(const Response& response) const override;
  util::StatusOr<Response> DecodeResponse(
      std::string_view frame) const override;
};

class BinaryCodec final : public Codec {
 public:
  WireFormat format() const override { return WireFormat::kBinary; }
  util::StatusOr<FrameSplit> SplitFrame(
      std::string_view buffer) const override;
  util::Status DecodeRequest(std::string_view frame,
                             Request* request) const override;
  std::string EncodeRequest(const Request& request) const override;
  std::string EncodeResponse(const Response& response) const override;
  util::StatusOr<Response> DecodeResponse(
      std::string_view frame) const override;
};

/// Process-lifetime codec singletons (stateless, concurrency-safe).
const Codec& CodecFor(WireFormat format);

}  // namespace ptk::serve

#endif  // PTK_SERVE_CODEC_H_
