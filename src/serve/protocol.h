#ifndef PTK_SERVE_PROTOCOL_H_
#define PTK_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "model/instance.h"
#include "serve/scheduler.h"
#include "serve/session_manager.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk::serve {

/// The JSON-lines serving protocol: one request object per input line,
/// one response object per output line. Strict in the PR-2 sense — an
/// unknown key, a number with trailing garbage, or any structural noise
/// is an InvalidArgument naming the offending token, never silently
/// ignored. The value grammar is the subset the protocol needs (strings
/// with the common escapes, 64-bit integers, and the answers array of
/// [smaller, larger] id pairs); numbers parse through the same
/// whole-field helpers as the CSV boundary (data/field_parse.h).
///
/// Requests:
///   {"op":"create_session"}
///   {"op":"next_pairs","session":"s1","count":2}
///   {"op":"post_answers","session":"s1","answers":[[2,0],[1,0]]}
///   {"op":"distribution","session":"s1","limit":3}
///   {"op":"quality","session":"s1"}
///   {"op":"metrics"}
///   {"op":"close","session":"s1"}
/// Every request may carry "id" (echoed back verbatim) and "deadline_ms"
/// (per-request deadline, enforced by the scheduler).
///
/// Responses:
///   {"id":...,"ok":true,<op payload>}
///   {"id":...,"ok":false,"error":{"code":"NotFound","message":"..."}}
struct RequestLine {
  std::string op;
  std::string session;
  std::string id;         // client correlation tag, echoed back
  int64_t count = 1;      // next_pairs
  int64_t limit = 0;      // distribution: top sets listed (0 = all)
  int64_t deadline_ms = 0;  // 0 = no deadline
  std::vector<std::pair<model::ObjectId, model::ObjectId>> answers;
};

/// Parses one request line. The returned line has a known op and
/// validated field ranges.
util::StatusOr<RequestLine> ParseRequestLine(std::string_view line);

/// Executes the op against the manager (and scheduler, for "metrics";
/// null omits the scheduler fields) and returns the response payload —
/// the comma-led fragment spliced after `"ok":true` (empty for ops with
/// no payload, e.g. close).
///
/// When `error_detail` is non-null and the op failed mid-way with partial
/// effect (post_answers stopping at a malformed answer after folding
/// earlier ones), it receives a comma-led fragment for the error object:
///   ,"partial":{"applied":N,"contradictory":N,"degenerate":N,"version":V}
/// so the client learns exactly which prefix of its batch took effect.
util::StatusOr<std::string> ExecuteRequest(SessionManager& manager,
                                           const Scheduler* scheduler,
                                           const RequestLine& request,
                                           std::string* error_detail = nullptr);

/// One full response line (no trailing newline). `id` may be empty.
/// `error_detail` (comma-led, e.g. from ExecuteRequest) is spliced into
/// the error object; ignored for OK responses. The default keeps the
/// historical shape byte-for-byte.
std::string RenderResponse(const std::string& id, const util::Status& status,
                           const std::string& payload,
                           const std::string& error_detail = std::string());

}  // namespace ptk::serve

#endif  // PTK_SERVE_PROTOCOL_H_
