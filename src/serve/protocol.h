#ifndef PTK_SERVE_PROTOCOL_H_
#define PTK_SERVE_PROTOCOL_H_

#include <string>
#include <vector>

#include "serve/message.h"
#include "serve/scheduler.h"
#include "serve/session_manager.h"
#include "util/status.h"

namespace ptk::serve {

/// Execution of the typed protocol (serve/message.h) against a
/// SessionManager. This layer is pure value → value: wire text never
/// appears here (that is serve/codec.h's job), and rendering decisions
/// never leak in. The historical string-fragment ExecuteRequest contract
/// (comma-led payload splices + an `error_detail` out-param) is gone;
/// partial-effect reporting for post_answers travels inside
/// Response::partial instead.
///
/// Requests are assumed codec-validated (ValidateRequest). The request's
/// correlation tag is echoed into Response::id.
///
/// For Op::kMetrics, `scheduler` (nullable) contributes the queue/stat
/// fields; sharded frontends aggregate across shards with BuildMetrics
/// instead of calling this per shard.
Response ExecuteRequest(SessionManager& manager, const Scheduler* scheduler,
                        const Request& request);

/// Aggregated metrics payload across shards: open sessions and memory
/// reports are merged (per-session entries re-sorted lexicographically by
/// id, matching the single-manager report order), scheduler stats are
/// summed. `schedulers` may be empty (no scheduler fields) but must
/// otherwise be free of nulls.
Response::Metrics BuildMetrics(
    const std::vector<const SessionManager*>& managers,
    const std::vector<const Scheduler*>& schedulers);

}  // namespace ptk::serve

#endif  // PTK_SERVE_PROTOCOL_H_
