#ifndef PTK_SERVE_RUNTIME_H_
#define PTK_SERVE_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "model/database.h"
#include "obs/metrics.h"
#include "serve/message.h"
#include "serve/scheduler.h"
#include "serve/session_manager.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk::serve {

/// Shard routing: FNV-1a 64 of the session id, reduced mod `shards`.
/// Stable across processes and shard counts are a deployment choice — the
/// same id always lands on hash(id) % shards.
int ShardOfSession(std::string_view session_id, int shards);

/// The sharded, coalescing front of the serving stack: N shards, each one
/// owning its own SessionManager + Scheduler (hash session id -> shard),
/// with request coalescing folding queued work into fewer engine passes.
///
/// Bit-identity: session ids are assigned from ONE runtime-global counter
/// ("s1", "s2", ... in submission order), independent of the shard count,
/// and every session op routes to the one shard owning its id — so the
/// same request stream produces byte-identical responses on 1 shard and
/// on N (pinned by tests/shared_sessions_test.cc and tools/check.sh).
/// The metrics payload is the exception by nature: queue depths and
/// scheduler tallies reflect scheduling, not session state.
///
/// Coalescing (Options::coalesce):
///   * same-session post_answers: batches queued behind an in-flight or
///     pending post group MERGE into it — one session lock, one engine
///     pass, one journal fsync for the whole group — with per-batch
///     reports identical to sequential execution (fold order is
///     submission order; see SessionManager::PostAnswersBatched).
///   * cross-session distribution/quality: concurrent reads on idle
///     sessions of a shard join one read group executed under a single
///     shared-artifact epoch pin (SessionManager::PinArtifacts) — one
///     scheduler task and one epoch entry instead of N.
/// Coalescing never reorders a session's requests: each session's groups
/// execute one at a time, in submission order.
///
/// Admission: per shard, at most Options::scheduler.queue_capacity
/// requests may be waiting (grouped or not). Beyond that Submit responds
/// immediately with kResourceExhausted carrying the machine-readable
/// Response::retry_after_ms hint (Options::shed_retry_after_ms). Because
/// coalescing drains the backlog in fewer, fatter passes, the same
/// offered load sheds strictly less with it on (bench/serve_bench.cc).
///
/// Deadlines: single (non-coalesced) ops keep the scheduler's full
/// deadline machinery — expiry before execution and mid-execution
/// cancellation through the session's CancelSource. Items inside a
/// coalesced group are checked at group execution start: an expired item
/// is answered kDeadlineExceeded without touching the engine (counted in
/// Stats::deadline_misses); a started item runs to completion.
class Runtime {
 public:
  struct Options {
    /// Shard count (clamped to >= 1). Each shard owns one SessionManager
    /// and one Scheduler, so `manager.max_sessions` and
    /// `scheduler.queue_capacity` are PER-SHARD budgets.
    int shards = 1;

    /// Master switch for both coalescing paths (off = every request is
    /// its own scheduler task, PR-5 behaviour behind the typed API).
    bool coalesce = true;

    /// Retry hint stamped into shed responses' retry_after_ms.
    int64_t shed_retry_after_ms = 1;

    /// Upper bound on items in one cross-session read group (clamped to
    /// >= 1). Unbounded batches convoy: one scheduler task serializes
    /// reads idle workers could run in parallel, and every involved
    /// session head-of-line blocks its own posts behind the batch. A
    /// full group stops accepting joiners; the next read opens a fresh
    /// one. Same-session post merges stay unbounded — a session's posts
    /// are serial either way, so merging them never costs parallelism.
    int max_read_batch = 16;

    /// Per-shard layers. With persistence configured, all shards share
    /// manager.persist.dir — each journaled session belongs to exactly
    /// one shard (its id's hash), so the stores never collide.
    SessionManager::Options manager;
    Scheduler::Options scheduler;
  };

  /// `db` must be finalized and outlive the runtime. Builds every shard's
  /// manager (each pre-warms from the shared catalog when persistence is
  /// on) and starts the shard schedulers.
  Runtime(const model::Database& db, const Options& options);

  /// Shutdown(), then tears the shards down.
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Submits one request. `done` fires exactly once per call — from a
  /// worker thread normally; inline from Submit for shed / shutdown
  /// rejections and for kMetrics (see below). The request must be
  /// codec-validated (ValidateRequest).
  ///
  /// kMetrics is a consistent-snapshot barrier: Submit waits for every
  /// shard to drain its admitted work, then aggregates all shards
  /// (BuildMetrics) inline. Concurrent Submit calls from other threads
  /// are not fenced — the barrier orders the metrics read against
  /// requests submitted before it on this thread.
  void Submit(Request request, std::function<void(Response)> done);

  /// Recovers every journaled session into the shard owning its id and
  /// resumes the global id counter past the recovered ids. Same
  /// preconditions as SessionManager::RecoverSessions: persistence
  /// configured, nothing submitted yet. Returns sessions recovered.
  util::StatusOr<int> Recover();

  /// Stops admission (later Submits answer kFailedPrecondition), waits
  /// for every admitted group to finish, then shuts the shard schedulers
  /// down. Idempotent.
  void Shutdown();

  struct Stats {
    int64_t submitted = 0;        // requests admitted
    int64_t completed = 0;        // requests answered (non-shed)
    int64_t shed = 0;             // requests rejected at admission
    int64_t coalesced_posts = 0;  // post batches merged into a group
    int64_t batched_reads = 0;    // reads that joined a read group
    int64_t deadline_misses = 0;  // group items expired before start
  };
  Stats stats() const;

  int shards() const { return static_cast<int>(shards_.size()); }
  const SessionManager& manager(int shard) const {
    return *shards_[shard]->manager;
  }

 private:
  struct Item {
    Request request;
    std::function<void(Response)> done;
    std::chrono::steady_clock::time_point deadline_at{};
    bool has_deadline = false;
  };

  /// One scheduler task. kSingle carries exactly one item; kPosts is a
  /// same-session post_answers merge; kReads spans idle sessions of one
  /// shard. `closed` flips at execution start (under the shard mutex):
  /// a closed group never accepts another item.
  struct Group {
    enum class Kind { kSingle, kPosts, kReads } kind = Kind::kSingle;
    bool closed = false;
    std::vector<Item> items;
    std::set<std::string> sessions;  // sessions whose queues this heads
    Response single_response;        // kSingle: filled by work()
  };

  /// Per-session FIFO of groups: `current` is dispatched to the shard
  /// scheduler (and, until closed, may still accept merges); `pending`
  /// dispatch one at a time as predecessors finish.
  struct SessionQueue {
    std::shared_ptr<Group> current;
    std::deque<std::shared_ptr<Group>> pending;
  };

  struct Shard {
    std::unique_ptr<SessionManager> manager;
    std::unique_ptr<Scheduler> scheduler;

    std::mutex mu;  // guards everything below
    std::map<std::string, SessionQueue> sessions;
    /// The shard-wide read group currently accepting joiners (null when
    /// none is open). Always == some involved session's `current`.
    std::shared_ptr<Group> open_reads;
    int waiting = 0;      // admitted requests whose group hasn't started
    int outstanding = 0;  // groups dispatched or pending
    std::condition_variable drain_cv;  // outstanding == 0

    // Per-shard labelled families (label-in-name convention, see
    // obs::FormatPrometheus).
    obs::Counter* requests_total = nullptr;
    obs::Counter* shed_total = nullptr;
    obs::Counter* coalesced_folds_total = nullptr;
    obs::Counter* batched_reads_total = nullptr;
  };

  /// Hands the group to the shard scheduler (kSingle wires deadline +
  /// cancel; group kinds run as plain tasks). Caller holds shard.mu.
  void DispatchLocked(Shard& shard, int shard_index,
                      const std::shared_ptr<Group>& group);
  /// Flips the group closed (idempotent) and moves its items out of the
  /// shard's waiting count; a closed open_reads stops accepting joiners.
  void AccountStart(Shard& shard, const std::shared_ptr<Group>& group);
  /// Runs the group on a worker: deadline triage, engine passes, and the
  /// per-item done callbacks (group kinds; kSingle's fires from the
  /// scheduler done hook so deadline post-processing applies).
  void ExecuteGroup(int shard_index, const std::shared_ptr<Group>& group);
  /// One non-coalesced op against the shard (create uses the runtime-
  /// assigned id stashed in Request::session).
  Response ExecuteSingle(int shard_index, const Request& request);
  /// Advances every involved session's queue and the drain accounting.
  void OnGroupDone(int shard_index, const std::shared_ptr<Group>& group);

  void RespondShed(const Item& item, int waiting);
  Response MetricsBarrier(const Request& request);

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<bool> accepting_{true};
  bool shut_down_ = false;  // guarded by shutdown_mu_
  std::mutex shutdown_mu_;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> coalesced_posts_{0};
  std::atomic<int64_t> batched_reads_{0};
  std::atomic<int64_t> deadline_misses_{0};
};

}  // namespace ptk::serve

#endif  // PTK_SERVE_RUNTIME_H_
