#include "serve/runtime.h"

#include <algorithm>
#include <utility>

#include "serve/protocol.h"

namespace ptk::serve {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

util::Status ShuttingDown() {
  return util::Status::FailedPrecondition(
      "serving runtime is shutting down; request rejected");
}

/// Same status text the Scheduler stamps on requests that expire before a
/// worker picks them up, so a group item that expires while coalesced is
/// byte-identical to the same request expiring as a single.
util::Status ExpiredInQueue() {
  return util::Status::DeadlineExceeded(
      "deadline expired while queued; request not executed");
}

bool IsRead(Op op) { return op == Op::kDistribution || op == Op::kQuality; }

}  // namespace

int ShardOfSession(std::string_view session_id, int shards) {
  if (shards <= 1) return 0;
  uint64_t hash = kFnvOffset;
  for (const char c : session_id) {
    hash ^= static_cast<uint8_t>(c);
    hash *= kFnvPrime;
  }
  return static_cast<int>(hash % static_cast<uint64_t>(shards));
}

Runtime::Runtime(const model::Database& db, const Options& options)
    : options_(options) {
  options_.shards = std::max(1, options_.shards);
  options_.scheduler.queue_capacity =
      std::max(1, options_.scheduler.queue_capacity);
  options_.max_read_batch = std::max(1, options_.max_read_batch);
  shards_.reserve(options_.shards);
  for (int i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->manager = std::make_unique<SessionManager>(db, options_.manager);
    // The runtime does its own admission (on request count, before
    // grouping); the shard scheduler only ever sees the groups those
    // admitted requests coalesce into, which is never more than the
    // request count — the +1 keeps a dispatch racing the last admission
    // from ever shedding inside the scheduler.
    Scheduler::Options scheduler_options = options_.scheduler;
    scheduler_options.queue_capacity += 1;
    shard->scheduler = std::make_unique<Scheduler>(scheduler_options);
    const std::string label = "{shard=\"" + std::to_string(i) + "\"}";
    shard->requests_total = obs::GetCounter(
        "ptk_serve_shard_requests_total" + label,
        "Requests admitted, per shard");
    shard->shed_total = obs::GetCounter(
        "ptk_serve_shard_shed_total" + label,
        "Requests rejected by per-shard admission control");
    shard->coalesced_folds_total = obs::GetCounter(
        "ptk_serve_shard_coalesced_folds_total" + label,
        "post_answers batches merged into an existing group, per shard");
    shard->batched_reads_total = obs::GetCounter(
        "ptk_serve_shard_batched_reads_total" + label,
        "distribution/quality reads that joined a read group, per shard");
    shards_.push_back(std::move(shard));
  }
}

Runtime::~Runtime() { Shutdown(); }

void Runtime::RespondShed(const Item& item, int waiting) {
  Response response = ErrorResponse(
      item.request.id,
      util::Status::ResourceExhausted(
          "request queue full (" + std::to_string(waiting) +
          " waiting); retry after in-flight requests drain"));
  response.retry_after_ms = options_.shed_retry_after_ms;
  item.done(std::move(response));
}

void Runtime::Submit(Request request, std::function<void(Response)> done) {
  if (!accepting_.load(std::memory_order_acquire)) {
    done(ErrorResponse(request.id, ShuttingDown()));
    return;
  }
  if (request.op == Op::kMetrics) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    Response response = MetricsBarrier(request);
    completed_.fetch_add(1, std::memory_order_relaxed);
    done(std::move(response));
    return;
  }

  // Session ids come from the runtime-global counter so the id stream —
  // and with it every downstream response — is independent of the shard
  // count. The assigned id rides in Request::session (empty on the wire
  // for create) down to ExecuteSingle.
  if (request.op == Op::kCreateSession) {
    request.session =
        "s" + std::to_string(next_id_.fetch_add(1, std::memory_order_relaxed));
  }
  const int shard_index = ShardOfSession(request.session, shards());
  Shard& shard = *shards_[shard_index];

  Item item;
  item.request = std::move(request);
  item.done = std::move(done);
  if (item.request.deadline_ms > 0) {
    item.has_deadline = true;
    item.deadline_at = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(item.request.deadline_ms);
  }

  std::unique_lock<std::mutex> lock(shard.mu);
  if (shard.waiting >= options_.scheduler.queue_capacity) {
    lock.unlock();
    shard.shed_total->Add();
    shed_.fetch_add(1, std::memory_order_relaxed);
    RespondShed(item, options_.scheduler.queue_capacity);
    return;
  }
  ++shard.waiting;
  shard.requests_total->Add();
  submitted_.fetch_add(1, std::memory_order_relaxed);

  const Op op = item.request.op;
  const std::string key = item.request.session;
  SessionQueue& queue = shard.sessions[key];
  const bool idle = queue.current == nullptr && queue.pending.empty();

  if (options_.coalesce && op == Op::kPostAnswers) {
    // Merge behind the newest same-session post group: the pending tail,
    // or the dispatched-but-not-started current. Either way the whole
    // group runs as one engine pass and one journal commit.
    Group* target = nullptr;
    if (!queue.pending.empty() &&
        queue.pending.back()->kind == Group::Kind::kPosts) {
      target = queue.pending.back().get();
    } else if (queue.pending.empty() && queue.current != nullptr &&
               queue.current->kind == Group::Kind::kPosts &&
               !queue.current->closed) {
      target = queue.current.get();
    }
    if (target != nullptr) {
      target->items.push_back(std::move(item));
      shard.coalesced_folds_total->Add();
      coalesced_posts_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  if (options_.coalesce && IsRead(op)) {
    if (idle && shard.open_reads != nullptr && !shard.open_reads->closed &&
        static_cast<int>(shard.open_reads->items.size()) <
            options_.max_read_batch) {
      // Cross-session batching: the shard's open read group is dispatched
      // but not yet running; ride along under its single epoch pin.
      shard.open_reads->items.push_back(std::move(item));
      shard.open_reads->sessions.insert(key);
      queue.current = shard.open_reads;
      shard.batched_reads_total->Add();
      batched_reads_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!idle && !queue.pending.empty() &&
        queue.pending.back()->kind == Group::Kind::kReads &&
        static_cast<int>(queue.pending.back()->items.size()) <
            options_.max_read_batch) {
      queue.pending.back()->items.push_back(std::move(item));
      shard.batched_reads_total->Add();
      batched_reads_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  auto group = std::make_shared<Group>();
  if (options_.coalesce && op == Op::kPostAnswers) {
    group->kind = Group::Kind::kPosts;
  } else if (options_.coalesce && IsRead(op)) {
    group->kind = Group::Kind::kReads;
  } else {
    group->kind = Group::Kind::kSingle;
  }
  group->sessions.insert(key);
  group->items.push_back(std::move(item));
  ++shard.outstanding;
  if (idle) {
    queue.current = group;
    if (group->kind == Group::Kind::kReads) shard.open_reads = group;
    DispatchLocked(shard, shard_index, group);
  } else {
    queue.pending.push_back(std::move(group));
  }
}

void Runtime::DispatchLocked(Shard& shard, int shard_index,
                             const std::shared_ptr<Group>& group) {
  Scheduler::Request job;
  // The runtime owns per-session ordering (one group per session in
  // flight); scheduler lanes stay out of the way.
  job.session_id.clear();
  if (group->kind == Group::Kind::kSingle) {
    Item& item = group->items.front();
    if (item.has_deadline) {
      const auto remaining =
          item.deadline_at - std::chrono::steady_clock::now();
      // An already-expired deadline still goes through the scheduler so
      // its expired-in-queue accounting (and status text) applies.
      job.deadline = std::max<std::chrono::steady_clock::duration>(
          remaining, std::chrono::nanoseconds(1));
    }
    if (!item.request.session.empty()) {
      job.cancel =
          shard.manager->CancelSourceFor(item.request.session).source;
    }
  }
  job.work = [this, shard_index, group] {
    ExecuteGroup(shard_index, group);
    return group->kind == Group::Kind::kSingle
               ? group->single_response.status
               : util::Status::OK();
  };
  job.done = [this, shard_index, group](const util::Status& status) {
    if (group->kind == Group::Kind::kSingle) {
      // Fires even when the scheduler expired the request before work ran
      // (work() skipped) — settle the waiting accounting either way.
      AccountStart(*shards_[shard_index], group);
      Item& item = group->items.front();
      Response response = std::move(group->single_response);
      if (status.code() != response.status.code()) {
        // The scheduler overruled the work's own outcome: expiry before
        // execution, or mid-execution cancellation remapped to a deadline
        // miss. Keep any partial-effect report; drop the payload.
        response.id = item.request.id;
        response.status = status;
        response.payload = Response::None{};
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      item.done(std::move(response));
    }
    OnGroupDone(shard_index, group);
  };
  const util::Status admitted = shard.scheduler->Submit(std::move(job));
  if (!admitted.ok()) {
    // Unreachable by construction (the scheduler queue is sized past the
    // runtime's own admission cap); fail the items loudly if it ever is.
    group->closed = true;
    shard.waiting -= static_cast<int>(group->items.size());
    for (Item& item : group->items) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      item.done(ErrorResponse(item.request.id, admitted));
    }
    for (const std::string& key : group->sessions) {
      const auto it = shard.sessions.find(key);
      if (it != shard.sessions.end() && it->second.current == group) {
        it->second.current = nullptr;
        if (it->second.pending.empty()) shard.sessions.erase(it);
      }
    }
    if (shard.open_reads == group) shard.open_reads = nullptr;
    if (--shard.outstanding == 0) shard.drain_cv.notify_all();
  }
}

void Runtime::AccountStart(Shard& shard,
                           const std::shared_ptr<Group>& group) {
  std::lock_guard<std::mutex> lock(shard.mu);
  if (group->closed) return;
  group->closed = true;
  shard.waiting -= static_cast<int>(group->items.size());
  if (shard.open_reads == group) shard.open_reads = nullptr;
}

Response Runtime::ExecuteSingle(int shard_index, const Request& request) {
  Shard& shard = *shards_[shard_index];
  if (request.op == Op::kCreateSession) {
    Response response;
    response.id = request.id;
    core::SemanticsId semantics = shard.manager->options().semantics;
    if (!request.semantics.empty()) {
      const std::optional<core::SemanticsId> resolved =
          core::SemanticsFromName(request.semantics);
      if (!resolved.has_value()) {
        response.status = util::Status::InvalidArgument(
            "unknown ranking semantics '" + request.semantics + "'");
        return response;
      }
      semantics = *resolved;
    }
    const util::Status s =
        shard.manager->CreateSession(request.session, semantics);
    if (!s.ok()) {
      response.status = s;
    } else {
      response.payload = Response::Created{request.session};
    }
    return response;
  }
  return ExecuteRequest(*shard.manager, shard.scheduler.get(), request);
}

void Runtime::ExecuteGroup(int shard_index,
                           const std::shared_ptr<Group>& group) {
  Shard& shard = *shards_[shard_index];
  AccountStart(shard, group);
  if (group->kind == Group::Kind::kSingle) {
    group->single_response = ExecuteSingle(shard_index,
                                           group->items.front().request);
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  auto expired = [&now](const Item& item) {
    return item.has_deadline && now >= item.deadline_at;
  };
  auto respond_expired = [this](Item& item) {
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    item.done(ErrorResponse(item.request.id, ExpiredInQueue()));
  };

  if (group->kind == Group::Kind::kPosts) {
    const std::string& session = *group->sessions.begin();
    std::vector<SessionManager::PostBatch> batches;
    std::vector<Item*> live;
    for (Item& item : group->items) {
      if (expired(item)) {
        respond_expired(item);
        continue;
      }
      SessionManager::PostBatch batch;
      batch.answers = item.request.answers;
      batches.push_back(std::move(batch));
      live.push_back(&item);
    }
    util::Status outer = util::Status::OK();
    if (!live.empty()) {
      outer = shard.manager->PostAnswersBatched(session, &batches);
    }
    for (size_t i = 0; i < live.size(); ++i) {
      Item& item = *live[i];
      Response response;
      response.id = item.request.id;
      if (!outer.ok()) {
        response.status = outer;
      } else if (!batches[i].status.ok()) {
        response.status = batches[i].status;
        // Same rule as the sequential path: a failed batch that had
        // partial effect reports it (an unknown session had none).
        if (batches[i].status.code() != util::Status::Code::kNotFound) {
          response.partial = batches[i].report;
        }
      } else {
        response.payload = Response::Posted{batches[i].report};
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      item.done(std::move(response));
    }
    return;
  }

  // kReads: every read of the group shares ONE epoch pin over the shard's
  // base artifacts — the batching this group exists for.
  const util::EpochManager::ReadGuard pin = shard.manager->PinArtifacts();
  for (Item& item : group->items) {
    if (expired(item)) {
      respond_expired(item);
      continue;
    }
    Response response = ExecuteRequest(*shard.manager, shard.scheduler.get(),
                                       item.request);
    completed_.fetch_add(1, std::memory_order_relaxed);
    item.done(std::move(response));
  }
}

void Runtime::OnGroupDone(int shard_index,
                          const std::shared_ptr<Group>& group) {
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  for (const std::string& key : group->sessions) {
    const auto it = shard.sessions.find(key);
    if (it == shard.sessions.end() || it->second.current != group) continue;
    SessionQueue& queue = it->second;
    queue.current = nullptr;
    if (!queue.pending.empty()) {
      queue.current = std::move(queue.pending.front());
      queue.pending.pop_front();
      DispatchLocked(shard, shard_index, queue.current);
    } else {
      shard.sessions.erase(it);
    }
  }
  if (shard.open_reads == group) shard.open_reads = nullptr;
  if (--shard.outstanding == 0) shard.drain_cv.notify_all();
}

Response Runtime::MetricsBarrier(const Request& request) {
  // Consistent snapshot: wait for every shard to drain what was admitted
  // before this call, then read them all.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->drain_cv.wait(lock, [&] { return shard->outstanding == 0; });
  }
  std::vector<const SessionManager*> managers;
  std::vector<const Scheduler*> schedulers;
  managers.reserve(shards_.size());
  schedulers.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    managers.push_back(shard->manager.get());
    schedulers.push_back(shard->scheduler.get());
  }
  Response response;
  response.id = request.id;
  Response::Metrics metrics = BuildMetrics(managers, schedulers);
  // Report client-visible request counts, not internal group counts, and
  // fold in the admissions and expiries the runtime handles itself.
  metrics.submitted = submitted_.load(std::memory_order_relaxed);
  metrics.executed = completed_.load(std::memory_order_relaxed);
  metrics.shed += shed_.load(std::memory_order_relaxed);
  metrics.deadline_misses +=
      deadline_misses_.load(std::memory_order_relaxed);
  response.payload = std::move(metrics);
  return response;
}

util::StatusOr<int> Runtime::Recover() {
  int total = 0;
  const int shard_count = shards();
  for (int i = 0; i < shard_count; ++i) {
    util::StatusOr<int> recovered = shards_[i]->manager->RecoverSessions(
        [i, shard_count](const std::string& id) {
          return ShardOfSession(id, shard_count) == i;
        });
    if (!recovered.ok()) return recovered.status();
    total += *recovered;
  }
  // Resume the global id counter past every recovered id (each manager
  // tracked the max of the ids it recovered).
  uint64_t next = 1;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    next = std::max(next, shard->manager->next_session_number());
  }
  next_id_.store(next, std::memory_order_relaxed);
  return total;
}

void Runtime::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shut_down_) return;
  accepting_.store(false, std::memory_order_release);
  // Drain the runtime's own queues first: a pending group is dispatched
  // to its scheduler only as its predecessor finishes, so the schedulers
  // must keep accepting until outstanding hits zero everywhere.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->drain_cv.wait(lock, [&] { return shard->outstanding == 0; });
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->scheduler->Shutdown();
  }
  shut_down_ = true;
}

Runtime::Stats Runtime::stats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.coalesced_posts = coalesced_posts_.load(std::memory_order_relaxed);
  stats.batched_reads = batched_reads_.load(std::memory_order_relaxed);
  stats.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace ptk::serve
