#ifndef PTK_SERVE_SESSION_MANAGER_H_
#define PTK_SERVE_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/selector.h"
#include "core/semantics.h"
#include "engine/ranking_engine.h"
#include "model/database.h"
#include "pbtree/pbtree.h"
#include "persist/session_store.h"
#include "pw/topk_distribution.h"
#include "rank/membership.h"
#include "serve/message.h"
#include "util/cancellation.h"
#include "util/epoch.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk::serve {

/// The session layer of the serving runtime: one immutable base database,
/// shared read-only selection artifacts, and N independent cleaning
/// sessions keyed by id.
///
/// Every session owns a private engine::RankingEngine (constraint set,
/// sparse copy-on-write working delta, memoized conditioning) plus the
/// asked-pair bookkeeping of a cleaning loop. The expensive artifacts —
/// the rank::MembershipCalculator and the pbtree::PBTree on the base
/// database — are built once here, pre-warmed, and handed to every
/// session's engine via Options::shared_membership / shared_tree, so N
/// sessions pay for one membership scan and one tree build total — and
/// keep sharing them for their whole lifetime. A session that folds with
/// update_working layers per-session deltas (override prefix columns,
/// copy-on-write tree path copies reclaimed through the manager-wide
/// util::EpochManager) *over* the shared base; nothing is ever cloned,
/// and per-session memory stays O(answers folded), not O(objects).
///
/// Thread safety: all public methods are safe to call concurrently.
/// Create/lookup/close synchronize on the session-table mutex; each
/// operation on a session then serializes on that session's own mutex, so
/// operations on *different* sessions run in parallel while one session's
/// engine only ever sees one caller at a time. The shared artifacts are
/// only read through const methods that MembershipCalculator / PBTree
/// document as concurrency-safe.
///
/// Cancellation: each session carries one util::CancelSource whose token
/// is threaded into its engine's enumeration and selection hot loops. The
/// scheduler's deadline watchdog fires it from outside the worker running
/// the request; an affected operation returns util::Status::Cancelled.
/// The source is re-armed between requests of the same session (which the
/// scheduler serializes) — see CancelScope.
class SessionManager {
 public:
  struct Options {
    /// Query shape shared by every session.
    int k = 10;
    pw::OrderMode order = pw::OrderMode::kInsensitive;
    pw::EnumeratorOptions enumerator;

    /// Ranking objective for sessions that do not name one at creation
    /// (create_session's optional `semantics` field overrides per
    /// session). The id is journaled in each session's meta and
    /// cross-checked on recovery.
    core::SemanticsId semantics = core::SemanticsId::kEntropy;

    /// Selection strategy and its knobs (see core::SelectorOptions).
    core::SelectorKind selector = core::SelectorKind::kOpt;
    int fanout = 8;
    uint64_t seed = 42;
    double rand_k_fraction = 0.2;
    int candidate_pool = 64;

    /// When true, applied answers also reweight the session's private
    /// working copy (the adaptive marginal fold); the default keeps
    /// selection on the base database (the paper's batch model), which is
    /// what lets sessions keep borrowing the shared artifacts forever.
    bool update_working = false;

    /// Admission limit: CreateSession beyond this sheds with
    /// kResourceExhausted instead of growing without bound.
    int max_sessions = 64;

    /// Durability. With a non-empty `dir`, every session journals its
    /// handed-out pairs and posted answers to a per-session write-ahead
    /// log under `<dir>/sessions/<id>/` — appended and (with `fsync`)
    /// fsynced *before* the operation is acknowledged — and periodically
    /// folds the log into a compact snapshot so replay after a restart
    /// costs O(answers since the last snapshot). RecoverSessions() brings
    /// every journaled session back bit-identically. An empty dir keeps
    /// the manager fully in-memory (the default, and the pre-existing
    /// behaviour).
    struct PersistOptions {
      std::string dir;
      /// fsync on every acknowledgement boundary. Turning this off keeps
      /// the write ordering but trades crash durability for speed (tests,
      /// benchmarks).
      bool fsync = true;
      /// Take a snapshot (and trim the WAL) after this many WAL records;
      /// <= 0 disables snapshotting (replay then re-folds the full log).
      int snapshot_every = 64;
    };
    PersistOptions persist;

    /// Test hook: when set, NextPairs obtains its selector from this
    /// factory instead of engine.MakeSelector(selector). Lets tests
    /// inject selectors with pathological streams (duplicates, stalls)
    /// that the real kinds never emit.
    std::function<std::unique_ptr<core::PairSelector>(
        engine::RankingEngine&)>
        selector_factory;
  };

  /// `db` must be finalized and outlive the manager. Builds and pre-warms
  /// the shared artifacts (one membership scan, one tree build).
  SessionManager(const model::Database& db, const Options& options);

  /// Drains the ptk_serve_sessions_open gauge for every still-open
  /// session. Without this, a manager destroyed with open sessions (every
  /// server shutdown path) leaked its count into the process-wide gauge
  /// forever, so a monitoring scrape after a manager bounce reported
  /// phantom sessions.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session and returns its id ("s1", "s2", ...). Sheds with
  /// kResourceExhausted once max_sessions are open (close one and retry).
  util::StatusOr<std::string> CreateSession();

  /// As above, under a caller-chosen ranking objective instead of
  /// Options::semantics.
  util::StatusOr<std::string> CreateSession(core::SemanticsId semantics);

  /// Opens a session under a caller-chosen id. The sharded runtime
  /// (serve/runtime.h) assigns globally sequential ids itself — so the
  /// id stream is independent of the shard count — and places each one
  /// in its owning shard through this overload. A currently-open
  /// duplicate id is InvalidArgument; admission control applies as in
  /// CreateSession(). Numeric "s<N>" ids advance the manager's own id
  /// sequence past N, keeping the two entry points collision-free.
  util::Status CreateSession(const std::string& id);

  /// As above, with a per-session ranking objective overriding
  /// Options::semantics. The choice is journaled in the session's meta:
  /// recovery rebuilds the session under the objective it was created
  /// with, whatever the recovering manager's default.
  util::Status CreateSession(const std::string& id,
                             core::SemanticsId semantics);

  /// Rebuilds every session journaled under Options::persist.dir: restores
  /// each one's latest snapshot, replays the WAL records past it through
  /// the same RankingEngine::Fold path that produced them (cross-checking
  /// the journaled constraint-set version after every replayed answer, so
  /// a divergent replay fails loudly instead of silently serving different
  /// state), repairs torn WAL tails, and resumes the id sequence past the
  /// recovered ids. Returns the number of sessions recovered.
  ///
  /// Only valid on a fresh manager (before any CreateSession) with
  /// persistence configured; kFailedPrecondition otherwise, and kIoError /
  /// kInternal when a journal is unreadable or inconsistent with this
  /// manager's database and options (fingerprint or config mismatch).
  util::StatusOr<int> RecoverSessions();

  /// Recovery restricted to the journaled ids the predicate accepts —
  /// how a sharded runtime routes each persisted session to the one
  /// manager that owns it (ids failing the predicate are left on disk,
  /// untouched, for the other shards). Same preconditions as the
  /// unfiltered overload.
  util::StatusOr<int> RecoverSessions(
      const std::function<bool(const std::string&)>& filter);

  /// Selects up to `count` not-yet-asked pairs for the session, best
  /// first, and marks them as posted (a repeated call keeps walking down
  /// the selector's stream). Fails with kResourceExhausted when the
  /// stream has no unasked pair left, kNotFound for an unknown id, and
  /// kCancelled when the session's cancel token fires mid-selection.
  util::StatusOr<std::vector<core::ScoredPair>> NextPairs(
      const std::string& id, int count);

  /// Outcome tally of one PostAnswers batch. Now protocol surface
  /// (serve/message.h); the nested name stays as the historical spelling.
  using PostReport = serve::PostReport;

  /// Folds crowd answers — each pair is (smaller, larger): the first
  /// object ranks above (is smaller than) the second — into the session's
  /// constraint set, in order. Stops at the first structural error
  /// (invalid object id); rejected-but-well-formed answers are tallied,
  /// not errors.
  ///
  /// `report` is an out-parameter precisely so it survives a mid-batch
  /// failure: on a non-OK return it tallies the answers folded *before*
  /// the failing one (the earlier StatusOr shape discarded that progress,
  /// leaving callers unable to tell which answers of a partial batch took
  /// effect). It is always written, never left stale.
  util::Status PostAnswers(
      const std::string& id,
      const std::vector<std::pair<model::ObjectId, model::ObjectId>>&
          answers,
      PostReport* report);

  /// One coalesced post_answers batch: the runtime folds several queued
  /// same-session batches under ONE session lock, ONE engine pass, and
  /// ONE journal commit (fsync / snapshot decision) instead of one each.
  struct PostBatch {
    /// In: the batch's answers, as in PostAnswers.
    std::vector<std::pair<model::ObjectId, model::ObjectId>> answers;
    /// Out: this batch's own outcome — identical, item for item, to what
    /// the same batches issued as sequential PostAnswers calls would
    /// have reported (folds happen in list order).
    util::Status status;
    PostReport report;
  };

  /// Applies the batches in order against one session. Returns kNotFound
  /// (and touches no batch outcome) when the session is unknown;
  /// otherwise OK, with every batch's own result in its status/report.
  /// After a batch fails mid-way the remaining batches still run — just
  /// as they would have under sequential PostAnswers calls.
  util::Status PostAnswersBatched(const std::string& id,
                                  std::vector<PostBatch>* batches);

  /// The session's conditioned top-k distribution (memoized per
  /// constraint-set version).
  util::StatusOr<pw::TopKDistribution> Distribution(const std::string& id);

  /// H(S_k | answers) for the session.
  util::StatusOr<double> Quality(const std::string& id);

  /// Closes the session; its id is never reused. kNotFound when unknown.
  util::Status Close(const std::string& id);

  /// A handle that keeps the session's CancelSource alive independent of
  /// Close() racing in; null `source` means the id was unknown. The
  /// scheduler re-arms the source before each request it runs for the
  /// session and hands it to the deadline watchdog.
  struct CancelHandle {
    std::shared_ptr<util::CancelSource> source;
  };
  CancelHandle CancelSourceFor(const std::string& id);

  int open_sessions() const;
  const model::Database& db() const { return *db_; }
  const Options& options() const { return options_; }

  /// Pins this manager's epoch domain: delta-tree node versions retired
  /// while the guard lives stay reachable. The runtime wraps one guard
  /// around a whole batched read group so N coalesced distribution /
  /// quality reads cost a single epoch entry instead of N.
  util::EpochManager::ReadGuard PinArtifacts() const {
    return epochs_->Enter();
  }

  /// The next value of the internal "s<N>" id sequence (1 on a fresh
  /// manager). The sharded runtime resumes its global id counter at the
  /// max across its shards after recovery.
  uint64_t next_session_number() const;

  /// Per-session delta memory, for the metrics server op and capacity
  /// tests. `bytes` is the engine's MemoryFootprint total: overlay
  /// overrides + membership delta columns + tree node copies —
  /// O(answers folded with update_working), 0 for sessions that never
  /// split from the base.
  struct SessionMemory {
    std::string id;
    uint64_t version = 0;   // engine constraint-set version
    int64_t bytes = 0;
  };
  /// Snapshot of every open session's delta memory (each session briefly
  /// locked in turn — no cross-session transaction). Total matches the
  /// ptk_serve_session_bytes gauge.
  std::vector<SessionMemory> MemoryReport() const;

 private:
  struct Session {
    // `cancel` is declared before `engine` so Arm can thread its token
    // into the engine options during construction.
    Session(const model::Database& db,
            engine::RankingEngine::Options options)
        : engine(db, Arm(std::move(options), cancel)) {}

    std::mutex mu;  // serializes all operations on this session
    util::CancelSource cancel;
    engine::RankingEngine engine;
    std::set<std::pair<model::ObjectId, model::ObjectId>> asked;

    // Delta bytes last accounted into the ptk_serve_session_bytes gauge.
    // Atomic so Close / the destructor can drain it without taking mu
    // (an in-flight fold may hold mu while the manager shuts down).
    std::atomic<int64_t> reported_bytes{0};

    // Durability state (all guarded by mu). `store` is open iff the
    // manager has persistence configured.
    persist::SessionStore store;
    int64_t records_since_snapshot = 0;

   private:
    static engine::RankingEngine::Options Arm(
        engine::RankingEngine::Options options,
        const util::CancelSource& source) {
      options.enumerator.cancel = source.token();
      return options;
    }
  };

  std::shared_ptr<Session> Find(const std::string& id) const;

  /// Admission check + table insert under mu_ (held by caller) for the
  /// given id; shared by every CreateSession entry point.
  util::Status CreateSessionLocked(const std::string& id,
                                   core::SemanticsId semantics);

  /// Folds one batch's answers into the session (caller holds
  /// session->mu), journaling each one — the per-answer core both
  /// PostAnswers and PostAnswersBatched share. Does NOT commit the
  /// journal; the caller owns the batch-final CommitJournal.
  util::Status FoldBatch(
      Session* session,
      const std::vector<std::pair<model::ObjectId, model::ObjectId>>&
          answers,
      PostReport* report);

  bool persist_enabled() const { return !options_.persist.dir.empty(); }

  /// Re-reads the session's delta memory and moves the
  /// ptk_serve_session_bytes gauge by the difference from the last
  /// accounting. Caller holds session->mu (reads the engine).
  void AccountSessionBytes(Session* session) const;
  /// Drains a departing session's contribution from the gauge.
  static void DrainSessionBytes(Session* session);

  /// Builds the compact durable image of a session's current state:
  /// engine constraints + version, the asked set, and (when the working
  /// copy materialized) the working marginals that differ bitwise from
  /// the base. Caller holds session->mu.
  persist::SessionSnapshot BuildSnapshot(const Session& session) const;

  /// Appends the record, advances the snapshot countdown, and — at the
  /// snapshot_every boundary — snapshots and trims. Caller holds
  /// session->mu; caller still owns the batch-final Sync().
  util::Status Journal(Session* session, persist::WalRecord record);

  /// Snapshot-or-sync decision at the end of an acknowledged batch.
  util::Status CommitJournal(Session* session);

  const model::Database* db_;
  Options options_;
  uint64_t db_fingerprint_ = 0;  // computed once when persistence is on
  std::shared_ptr<const rank::MembershipCalculator> membership_;
  std::shared_ptr<const pbtree::PBTree> tree_;
  // One reclamation domain for every session's DeltaTree: retired node
  // versions are freed once no in-flight reader (of any session) can
  // still reach them.
  std::shared_ptr<util::EpochManager> epochs_;

  mutable std::mutex mu_;  // guards sessions_ and next_id_
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  uint64_t next_id_ = 1;
};

}  // namespace ptk::serve

#endif  // PTK_SERVE_SESSION_MANAGER_H_
