#include "serve/protocol.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "data/field_parse.h"
#include "obs/export.h"
#include "pw/topk_distribution.h"

namespace ptk::serve {

namespace {

util::Status ParseError(std::string_view what, std::string_view around) {
  return util::Status::InvalidArgument(
      "protocol: " + std::string(what) + " near " +
      data::internal::Excerpt(around));
}

/// Single-line JSON reader for the protocol's value subset. Strict:
/// every syntax deviation is an error with the offending excerpt.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ == text_.size();
  }

  std::string_view Rest() const { return text_.substr(pos_); }

  util::Status ParseString(std::string* out) {
    if (!Consume('"')) return ParseError("expected string", Rest());
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return util::Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ == text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        default:
          return ParseError("unsupported string escape",
                            text_.substr(pos_ - 2));
      }
    }
    return ParseError("unterminated string", text_);
  }

  util::Status ParseInt(int64_t* out) {
    SkipWs();
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!data::internal::ParseInt64Field(token, out)) {
      return ParseError("expected integer", text_.substr(start));
    }
    return util::Status::OK();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

util::StatusOr<RequestLine> ParseRequestLine(std::string_view line) {
  JsonReader reader(line);
  if (!reader.Consume('{')) {
    return ParseError("expected request object", line);
  }
  RequestLine request;
  bool first = true;
  while (!reader.Consume('}')) {
    if (!first && !reader.Consume(',')) {
      return ParseError("expected ',' or '}'", reader.Rest());
    }
    first = false;
    std::string key;
    if (util::Status s = reader.ParseString(&key); !s.ok()) return s;
    if (!reader.Consume(':')) {
      return ParseError("expected ':' after key '" + key + "'",
                        reader.Rest());
    }
    if (key == "op") {
      if (util::Status s = reader.ParseString(&request.op); !s.ok()) return s;
    } else if (key == "session") {
      if (util::Status s = reader.ParseString(&request.session); !s.ok()) {
        return s;
      }
    } else if (key == "id") {
      if (util::Status s = reader.ParseString(&request.id); !s.ok()) return s;
    } else if (key == "count") {
      if (util::Status s = reader.ParseInt(&request.count); !s.ok()) return s;
    } else if (key == "limit") {
      if (util::Status s = reader.ParseInt(&request.limit); !s.ok()) return s;
    } else if (key == "deadline_ms") {
      if (util::Status s = reader.ParseInt(&request.deadline_ms); !s.ok()) {
        return s;
      }
    } else if (key == "answers") {
      if (!reader.Consume('[')) {
        return ParseError("expected answers array", reader.Rest());
      }
      while (!reader.Consume(']')) {
        if (!request.answers.empty() && !reader.Consume(',')) {
          return ParseError("expected ',' or ']' in answers", reader.Rest());
        }
        if (!reader.Consume('[')) {
          return ParseError("expected [smaller,larger] pair", reader.Rest());
        }
        int64_t smaller = 0;
        int64_t larger = 0;
        if (util::Status s = reader.ParseInt(&smaller); !s.ok()) return s;
        if (!reader.Consume(',')) {
          return ParseError("expected ',' in answer pair", reader.Rest());
        }
        if (util::Status s = reader.ParseInt(&larger); !s.ok()) return s;
        if (!reader.Consume(']')) {
          return ParseError("expected ']' closing answer pair",
                            reader.Rest());
        }
        constexpr int64_t kMaxId =
            std::numeric_limits<model::ObjectId>::max();
        if (smaller < 0 || smaller > kMaxId || larger < 0 ||
            larger > kMaxId) {
          return util::Status::InvalidArgument(
              "protocol: answer object id out of range");
        }
        request.answers.emplace_back(static_cast<model::ObjectId>(smaller),
                                     static_cast<model::ObjectId>(larger));
      }
    } else {
      return util::Status::InvalidArgument("protocol: unknown key '" + key +
                                           "'");
    }
  }
  if (!reader.AtEnd()) {
    return ParseError("trailing characters after request object",
                      reader.Rest());
  }
  if (request.op.empty()) {
    return util::Status::InvalidArgument("protocol: missing \"op\"");
  }
  if (request.count <= 0) {
    return util::Status::InvalidArgument("protocol: count must be > 0");
  }
  if (request.limit < 0 || request.deadline_ms < 0) {
    return util::Status::InvalidArgument(
        "protocol: limit and deadline_ms must be >= 0");
  }
  return request;
}

util::StatusOr<std::string> ExecuteRequest(SessionManager& manager,
                                           const Scheduler* scheduler,
                                           const RequestLine& request,
                                           std::string* error_detail) {
  if (request.op == "create_session") {
    util::StatusOr<std::string> id = manager.CreateSession();
    if (!id.ok()) return id.status();
    return ",\"session\":\"" + obs::JsonEscape(*id) + "\"";
  }
  if (request.op == "next_pairs") {
    util::StatusOr<std::vector<core::ScoredPair>> pairs =
        manager.NextPairs(request.session, static_cast<int>(request.count));
    if (!pairs.ok()) return pairs.status();
    std::string payload = ",\"pairs\":[";
    for (size_t i = 0; i < pairs->size(); ++i) {
      const core::ScoredPair& pair = (*pairs)[i];
      if (i > 0) payload += ',';
      payload += '[' + std::to_string(pair.a) + ',' +
                 std::to_string(pair.b) + ',' +
                 FormatDouble(pair.ei_estimate) + ']';
    }
    payload += ']';
    return payload;
  }
  if (request.op == "post_answers") {
    SessionManager::PostReport report;
    const util::Status s =
        manager.PostAnswers(request.session, request.answers, &report);
    const std::string counts =
        ",\"applied\":" + std::to_string(report.applied) +
        ",\"contradictory\":" + std::to_string(report.contradictory) +
        ",\"degenerate\":" + std::to_string(report.degenerate) +
        ",\"version\":" + std::to_string(report.version);
    if (!s.ok()) {
      // Surface what the partial batch did: everything before the failing
      // answer was folded (and journaled) for good.
      if (error_detail != nullptr &&
          s.code() != util::Status::Code::kNotFound) {
        *error_detail = ",\"partial\":{" + counts.substr(1) + "}";
      }
      return s;
    }
    return counts;
  }
  if (request.op == "distribution") {
    util::StatusOr<pw::TopKDistribution> dist =
        manager.Distribution(request.session);
    if (!dist.ok()) return dist.status();
    const auto ranked = dist->SortedByProbDesc();
    const size_t shown =
        request.limit == 0
            ? ranked.size()
            : std::min(ranked.size(), static_cast<size_t>(request.limit));
    std::string payload = ",\"sets\":[";
    for (size_t i = 0; i < shown; ++i) {
      if (i > 0) payload += ',';
      payload += "{\"objects\":[";
      for (size_t j = 0; j < ranked[i].first.size(); ++j) {
        if (j > 0) payload += ',';
        payload += std::to_string(ranked[i].first[j]);
      }
      payload += "],\"p\":" + FormatDouble(ranked[i].second) + '}';
    }
    payload += "],\"entropy\":" + FormatDouble(dist->Entropy());
    return payload;
  }
  if (request.op == "quality") {
    util::StatusOr<double> quality = manager.Quality(request.session);
    if (!quality.ok()) return quality.status();
    return ",\"quality\":" + FormatDouble(*quality);
  }
  if (request.op == "metrics") {
    std::string payload =
        ",\"sessions_open\":" + std::to_string(manager.open_sessions());
    // Per-session delta memory: what each open session adds on top of the
    // shared base artifacts (O(answers folded), see SessionMemory).
    const auto memory = manager.MemoryReport();
    int64_t total_bytes = 0;
    payload += ",\"session_bytes\":{";
    for (size_t i = 0; i < memory.size(); ++i) {
      if (i > 0) payload += ',';
      payload += "\"" + obs::JsonEscape(memory[i].id) +
                 "\":" + std::to_string(memory[i].bytes);
      total_bytes += memory[i].bytes;
    }
    payload += "},\"session_bytes_total\":" + std::to_string(total_bytes);
    if (scheduler != nullptr) {
      const Scheduler::Stats stats = scheduler->stats();
      payload += ",\"queue_depth\":" + std::to_string(scheduler->queue_depth()) +
                 ",\"submitted\":" + std::to_string(stats.submitted) +
                 ",\"executed\":" + std::to_string(stats.executed) +
                 ",\"shed\":" + std::to_string(stats.shed) +
                 ",\"deadline_misses\":" + std::to_string(stats.deadline_misses);
    }
    return payload;
  }
  if (request.op == "close") {
    if (util::Status s = manager.Close(request.session); !s.ok()) return s;
    return std::string();
  }
  return util::Status::InvalidArgument("protocol: unknown op '" +
                                       request.op + "'");
}

std::string RenderResponse(const std::string& id, const util::Status& status,
                           const std::string& payload,
                           const std::string& error_detail) {
  std::string out = "{";
  if (!id.empty()) out += "\"id\":\"" + obs::JsonEscape(id) + "\",";
  if (status.ok()) {
    out += "\"ok\":true" + payload + "}";
  } else {
    out += "\"ok\":false,\"error\":{\"code\":\"";
    out += util::StatusCodeName(status.code());
    out += "\",\"message\":\"" + obs::JsonEscape(status.message()) + "\"";
    out += error_detail;
    out += "}}";
  }
  return out;
}

}  // namespace ptk::serve
