#include "serve/protocol.h"

#include <algorithm>
#include <utility>

#include "pw/topk_distribution.h"

namespace ptk::serve {

Response ExecuteRequest(SessionManager& manager, const Scheduler* scheduler,
                        const Request& request) {
  Response response;
  response.id = request.id;
  switch (request.op) {
    case Op::kCreateSession: {
      core::SemanticsId semantics = manager.options().semantics;
      if (!request.semantics.empty()) {
        const std::optional<core::SemanticsId> resolved =
            core::SemanticsFromName(request.semantics);
        if (!resolved.has_value()) {
          response.status = util::Status::InvalidArgument(
              "unknown ranking semantics '" + request.semantics + "'");
          return response;
        }
        semantics = *resolved;
      }
      util::StatusOr<std::string> id = manager.CreateSession(semantics);
      if (!id.ok()) {
        response.status = id.status();
        return response;
      }
      response.payload = Response::Created{*std::move(id)};
      return response;
    }
    case Op::kNextPairs: {
      util::StatusOr<std::vector<core::ScoredPair>> pairs =
          manager.NextPairs(request.session, static_cast<int>(request.count));
      if (!pairs.ok()) {
        response.status = pairs.status();
        return response;
      }
      Response::Pairs payload;
      payload.pairs.reserve(pairs->size());
      for (const core::ScoredPair& pair : *pairs) {
        payload.pairs.push_back({pair.a, pair.b, pair.ei_estimate});
      }
      response.payload = std::move(payload);
      return response;
    }
    case Op::kPostAnswers: {
      PostReport report;
      const util::Status s =
          manager.PostAnswers(request.session, request.answers, &report);
      if (!s.ok()) {
        response.status = s;
        // Surface what the partial batch did: everything before the
        // failing answer was folded (and journaled) for good. An unknown
        // session had no partial effect at all, so no report travels.
        if (s.code() != util::Status::Code::kNotFound) {
          response.partial = report;
        }
        return response;
      }
      response.payload = Response::Posted{report};
      return response;
    }
    case Op::kDistribution: {
      util::StatusOr<pw::TopKDistribution> dist =
          manager.Distribution(request.session);
      if (!dist.ok()) {
        response.status = dist.status();
        return response;
      }
      const auto ranked = dist->SortedByProbDesc();
      const size_t shown =
          request.limit == 0
              ? ranked.size()
              : std::min(ranked.size(), static_cast<size_t>(request.limit));
      Response::Distribution payload;
      payload.sets.reserve(shown);
      for (size_t i = 0; i < shown; ++i) {
        payload.sets.push_back({ranked[i].first, ranked[i].second});
      }
      payload.entropy = dist->Entropy();
      response.payload = std::move(payload);
      return response;
    }
    case Op::kQuality: {
      util::StatusOr<double> quality = manager.Quality(request.session);
      if (!quality.ok()) {
        response.status = quality.status();
        return response;
      }
      response.payload = Response::Quality{*quality};
      return response;
    }
    case Op::kMetrics: {
      std::vector<const Scheduler*> schedulers;
      if (scheduler != nullptr) schedulers.push_back(scheduler);
      response.payload = BuildMetrics({&manager}, schedulers);
      return response;
    }
    case Op::kClose: {
      response.status = manager.Close(request.session);
      return response;
    }
  }
  response.status = util::Status::Internal("protocol: unhandled op");
  return response;
}

Response::Metrics BuildMetrics(
    const std::vector<const SessionManager*>& managers,
    const std::vector<const Scheduler*>& schedulers) {
  Response::Metrics metrics;
  for (const SessionManager* manager : managers) {
    metrics.sessions_open += manager->open_sessions();
    for (const SessionManager::SessionMemory& memory :
         manager->MemoryReport()) {
      metrics.session_bytes.push_back({memory.id, memory.bytes});
      metrics.session_bytes_total += memory.bytes;
    }
  }
  // Each manager reports its sessions in lexicographic id order; restore
  // that global order across shards so a sharded metrics payload is
  // bit-identical to the single-manager one.
  std::sort(metrics.session_bytes.begin(), metrics.session_bytes.end(),
            [](const Response::SessionBytes& a,
               const Response::SessionBytes& b) {
              return a.session < b.session;
            });
  metrics.has_scheduler = !schedulers.empty();
  for (const Scheduler* scheduler : schedulers) {
    const Scheduler::Stats stats = scheduler->stats();
    metrics.queue_depth += scheduler->queue_depth();
    metrics.submitted += stats.submitted;
    metrics.executed += stats.executed;
    metrics.shed += stats.shed;
    metrics.deadline_misses += stats.deadline_misses;
  }
  return metrics;
}

}  // namespace ptk::serve
