#ifndef PTK_ENGINE_RANKING_ENGINE_H_
#define PTK_ENGINE_RANKING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/quality.h"
#include "core/selector.h"
#include "core/semantics.h"
#include "model/database.h"
#include "model/database_overlay.h"
#include "pbtree/delta_tree.h"
#include "pbtree/pbtree.h"
#include "pw/constraint.h"
#include "pw/topk_distribution.h"
#include "rank/membership.h"
#include "util/epoch.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace ptk::engine {

/// Selector kinds and their helpers live in core/selector.h now (they are
/// the construction surface of the selection layer, not an engine
/// concept); these aliases keep the historical engine:: spellings valid.
using SelectorKind = core::SelectorKind;

inline std::string_view SelectorKindName(SelectorKind kind) {
  return core::SelectorKindName(kind);
}
inline std::optional<SelectorKind> SelectorKindFromName(
    std::string_view name) {
  return core::SelectorKindFromName(name);
}
inline std::vector<SelectorKind> AllSelectorKinds() {
  return core::AllSelectorKinds();
}

/// The incremental conditioning layer shared by cleaning sessions, the
/// adaptive cleaner, the CLI, and the examples.
///
/// One engine owns, for one base database and one (k, order) query:
///   - the accumulated pairwise constraint set and its version counter,
///   - the exact evaluation path (QualityEvaluator on the *base* database,
///     so reported distributions/qualities are always the exact Eq. 5
///     conditioning, never the marginal approximation),
///   - a sparse copy-on-write working database (model::DatabaseOverlay
///     over a delta Database) that selection operates on: folding an
///     answer reweights only the two affected objects' overrides,
///   - lazily built per-session *delta artifacts* layered over the shared
///     base artifacts: a delta-mode rank::MembershipCalculator (override
///     prefix columns over the shared base calculator) and a
///     pbtree::DeltaTree (copy-on-write path copies over the shared base
///     tree, reclaimed through the shared util::EpochManager),
///   - memoized conditioned top-k distribution and quality H(S_k | A),
///     invalidated by the constraint-set version counter.
///
/// The artifact-ownership contract: the base database, base membership
/// calculator, and base PBTree are immutable and shared by every engine
/// (many concurrent readers); each engine owns exactly one writer-side
/// delta per artifact, kept O(answers folded). An engine never clones the
/// base artifacts, before or after its first fold.
///
/// Contract (pinned by tests/engine_test.cc): every engine-served result is
/// bit-identical — or within 1e-12 where a different summation order is
/// inherent — to recomputing the same quantity from scratch on a freshly
/// built database carrying the working probabilities.
///
/// Not thread-safe: one engine serves one logical cleaning loop.
class RankingEngine {
 public:
  struct Options {
    int k = 10;
    pw::OrderMode order = pw::OrderMode::kInsensitive;
    pw::EnumeratorOptions enumerator;

    /// The objective this engine cleans toward (core/semantics.h). The
    /// default is the paper's entropy objective and keeps every historical
    /// path — distribution memo, EI selection, counters — byte-identical.
    /// Non-default objectives read the conditioned *marginals*: Fold then
    /// always updates the working copy (the requested update_working is
    /// OR-ed with RankingSemantics::requires_working_fold()), Quality()
    /// reports the objective's uncertainty functional, and MakeSelector
    /// rescores candidate pairs by the objective's expected improvement.
    core::SemanticsId semantics = core::SemanticsId::kEntropy;

    /// Selector knobs, passed through to MakeSelector.
    int fanout = 8;
    uint64_t seed = 42;
    double rand_k_fraction = 0.2;
    int candidate_pool = 64;
    util::ParallelConfig parallel;

    /// Shared read-only artifacts on the *base* database. The serving
    /// runtime builds these once per (db, k) / (db, fanout) and hands them
    /// to every session's engine, so N concurrent sessions pay for one
    /// membership scan and one tree build total — and keep sharing them
    /// for their whole lifetime: once a session folds with update_working,
    /// the engine layers per-session deltas (override prefix columns,
    /// copy-on-write tree paths) *over* these base artifacts instead of
    /// cloning them. Compatibility (same database object, same k) is
    /// checked on use; a mismatched artifact degrades to a private base
    /// build rather than serving wrong data.
    std::shared_ptr<const rank::MembershipCalculator> shared_membership;
    std::shared_ptr<const pbtree::PBTree> shared_tree;

    /// Epoch manager that reclaims retired DeltaTree node versions. Shared
    /// across sessions by the serving runtime (one reclamation domain per
    /// catalog); an engine without one lazily owns a private manager.
    std::shared_ptr<util::EpochManager> epochs;
  };

  /// What Fold did with an answer.
  enum class FoldOutcome {
    kApplied,        // accepted: constraints extended, working db updated
    kContradictory,  // zero surviving possible worlds — discarded
    kDegenerate,     // marginal fold would zero out an object — discarded
  };

  /// `db` must be finalized and outlive the engine.
  RankingEngine(const model::Database& db, const Options& options);

  const model::Database& base_db() const { return *base_; }
  /// The copy-on-write database selection operates on. Until the first
  /// update_working fold this *is* base_db() (same object — the overlay
  /// copies lazily), which is what makes shared-artifact borrowing sound.
  const model::Database& working_db() const { return overlay_.db(); }

  /// Forces the sparse working delta into existence now. Idempotent and
  /// cheap (no copy — the delta resolves against the base until objects
  /// are overridden). Kept for callers that want working_db() to stop
  /// aliasing the base before the first fold.
  void PrepareWorkingCopy();
  /// Whether the copy-on-write working database has split from the base
  /// (some update_working fold, PrepareWorkingCopy, or a snapshot restore
  /// with working weights happened). The persist layer snapshots working
  /// marginals only when this is true.
  bool working_materialized() const { return overlay_.materialized(); }
  const Options& options() const { return options_; }
  const pw::ConstraintSet& constraints() const { return constraints_; }
  /// Bumped once per applied fold; memoized artifacts key on it.
  uint64_t version() const { return version_; }

  /// The membership calculator on the working database: the shared base
  /// calculator while the working database still aliases the base, then a
  /// per-session delta calculator layered over it (override prefix
  /// columns, O(answers)), refreshed per-object after every applied
  /// update_working fold.
  std::shared_ptr<const rank::MembershipCalculator> membership();

  /// The PB-tree reader on the working database: the shared base tree
  /// while the working database aliases the base, then a per-session
  /// pbtree::DeltaTree layering copy-on-write path copies over it,
  /// updated after every applied update_working fold.
  const pbtree::TreeReader& tree();

  /// Per-engine delta memory: bytes attributable to this session's
  /// overlay overrides, membership delta columns, and tree node copies.
  /// O(answers folded); stays 0 until the first update_working fold.
  struct MemoryFootprint {
    int64_t overlay_bytes = 0;
    int64_t membership_bytes = 0;
    int64_t tree_bytes = 0;
    int64_t total() const {
      return overlay_bytes + membership_bytes + tree_bytes;
    }
  };
  MemoryFootprint DeltaMemory() const;

  /// Folds the answer "smaller ranks above larger" into the engine:
  /// rejects it as kContradictory when it leaves zero surviving possible
  /// worlds (exact check on the base database, Eq. 5's domain), otherwise
  /// extends the constraint set. With `update_working`, additionally folds
  /// the answer into the working database's marginals
  ///   p'_s(i) ∝ p_s(i)·Pr_l(l > i),  p'_l(j) ∝ p_l(j)·Pr_s(s < j)
  /// (pre-update marginals; the documented cross-object-correlation-
  /// dropping approximation of AdaptiveCleaner) and refreshes the two
  /// objects in every built artifact — O(instances + height·fanout) work,
  /// independent of how many other objects the database holds. Returns a
  /// non-OK status only for errors (invalid ids); rejected answers are
  /// reported through `outcome`.
  util::Status Fold(model::ObjectId smaller, model::ObjectId larger,
                    bool update_working, FoldOutcome* outcome);

  /// One working-database marginal to restore, bit-exact (persist layer).
  struct RestoredWeights {
    model::ObjectId oid = model::kInvalidObject;
    std::vector<double> probs;
  };

  /// Fast-forwards a *fresh* engine to a snapshotted state without
  /// re-running the folds it summarizes: installs the accepted constraints
  /// in their original fold order, sets version() to `version`, and — when
  /// `working` is non-empty — materializes the sparse working delta and
  /// restores each listed object's marginals verbatim (no renormalization,
  /// so the working database is bitwise the one that was snapshotted; see
  /// model::DatabaseOverlay::RestoreExact). The restored state is a delta
  /// over the shared base, and the delta artifacts built afterwards pick
  /// the restored overrides up on construction — a warm-restarted session
  /// shares the base membership/tree exactly like a live one. Subsequent
  /// WAL replay folds continue from here and land bit-identically where
  /// the uninterrupted run did. kFailedPrecondition unless the engine is
  /// untouched (no folds, no working copy); kInvalidArgument on
  /// out-of-range object ids or a version inconsistent with the
  /// constraint count.
  util::Status RestoreSnapshot(
      const std::vector<std::pair<model::ObjectId, model::ObjectId>>&
          constraints,
      uint64_t version, const std::vector<RestoredWeights>& working);

  /// A fresh selector of the given kind on the working database, borrowing
  /// the engine's shared artifacts (membership; PB-tree for the
  /// index-based kinds). Create one per selection step: construction is
  /// cheap once the shared artifacts exist, and a selector created before
  /// a Fold would keep serving the refreshed artifacts without re-reading
  /// options.
  std::unique_ptr<core::PairSelector> MakeSelector(SelectorKind kind);

  /// The exact top-k distribution conditioned on the accumulated
  /// constraints (on the base database). Memoized per version().
  util::StatusOr<pw::TopKDistribution> Distribution() const;

  /// The active objective's uncertainty. For the default entropy
  /// semantics: H(S_k | constraints) from the memoized distribution (the
  /// historical behaviour, bit-identical). For other semantics: the
  /// objective's functional over the conditioned working marginals,
  /// memoized per version().
  util::StatusOr<double> Quality() const;

  /// The active objective (engine-owned, stateful — its memo tracks this
  /// engine's working copy).
  const core::RankingSemantics& semantics() const { return *semantics_; }

  /// The point answer under the active semantics (core/semantics.h):
  /// the most probable result set for entropy, the k best expected ranks
  /// for expected_rank, the per-rank winners for ukranks.
  util::StatusOr<std::vector<topk::ScoredObject>> PointAnswer() const;

  /// Pr(constraints hold) on the base database (exact, Eq. 5 numerator).
  double ConstraintProbability(const pw::ConstraintSet& constraints) const {
    return evaluator_.ConstraintProbability(constraints);
  }

  /// The exact evaluation path, for consumers that need the full
  /// QualityEvaluator surface (EI oracles, crowd-expectation queries).
  const core::QualityEvaluator& evaluator() const { return evaluator_; }

  /// Per-engine observability snapshot for tests and benchmarks. The same
  /// events also feed the process-wide obs::MetricsRegistry (see DESIGN.md
  /// §4.10: ptk_engine_fold_seconds, ptk_engine_folds_applied_total, ...),
  /// which aggregates across engines; this accessor stays per-instance.
  struct Counters {
    int64_t enumerations = 0;       // full conditioned-distribution builds
    int64_t distribution_hits = 0;  // memoized Distribution/Quality serves
    int64_t folds_applied = 0;
    int64_t folds_rejected = 0;     // contradictory + degenerate
  };
  /// Returns a consistent-enough snapshot assembled from atomic reads: it
  /// is safe to call while another thread is folding (each field is an
  /// atomic load; the struct is not a cross-field transaction). This used
  /// to hand out a reference into a plain struct mutated by const
  /// accessors — a data race under any concurrent reader.
  Counters counters() const {
    Counters c;
    c.enumerations = enumerations_.load(std::memory_order_relaxed);
    c.distribution_hits = distribution_hits_.load(std::memory_order_relaxed);
    c.folds_applied = folds_applied_.load(std::memory_order_relaxed);
    c.folds_rejected = folds_rejected_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  // Engine options projected onto SelectorOptions, without artifacts.
  core::SelectorOptions BaseSelectorOptions() const;
  // Builds/refreshes the memoized distribution for the current version.
  util::Status EnsureDistribution() const;
  // The context the active semantics reads (base, working, k, order).
  core::SemanticsContext SemanticsContextNow() const;
  // The shared (or lazily owned) base artifacts — always on *base_.
  std::shared_ptr<const rank::MembershipCalculator> BaseMembership();
  std::shared_ptr<const pbtree::PBTree> BaseTree();
  std::shared_ptr<util::EpochManager> Epochs();

  const model::Database* base_;
  Options options_;
  core::QualityEvaluator evaluator_;  // exact path, base database
  model::DatabaseOverlay overlay_;    // sparse working delta
  pw::ConstraintSet constraints_;
  uint64_t version_ = 0;

  // Base artifacts: Options::shared_* when compatible, else built once on
  // the base database and kept for the engine's lifetime.
  std::shared_ptr<const rank::MembershipCalculator> base_membership_;
  std::shared_ptr<const pbtree::PBTree> base_tree_;
  std::shared_ptr<util::EpochManager> epochs_;
  // Per-session deltas over the base artifacts, lazily created on first
  // use after the working delta materializes. Fold refreshes the two
  // touched objects in each; construction picks up overrides already in
  // the delta (snapshot restore).
  std::shared_ptr<rank::MembershipCalculator> delta_membership_;
  std::unique_ptr<pbtree::DeltaTree> delta_tree_;

  // Memoized exact conditioning, keyed on version_.
  mutable bool dist_valid_ = false;
  mutable uint64_t dist_version_ = 0;
  mutable pw::TopKDistribution dist_;
  mutable double quality_ = 0.0;

  // The active objective and — for non-default semantics — its memoized
  // uncertainty, keyed on version_ like the distribution memo. Mutable:
  // the semantics' internal memo refreshes from const Quality() reads.
  mutable std::unique_ptr<core::RankingSemantics> semantics_;
  mutable bool sem_quality_valid_ = false;
  mutable uint64_t sem_quality_version_ = 0;
  mutable double sem_quality_ = 0.0;

  // counters() storage. Atomics, not a struct: the memo counters are
  // bumped from const accessors and folds_* from Fold, while counters()
  // may be read concurrently (e.g. a metrics scrape).
  mutable std::atomic<int64_t> enumerations_{0};
  mutable std::atomic<int64_t> distribution_hits_{0};
  std::atomic<int64_t> folds_applied_{0};
  std::atomic<int64_t> folds_rejected_{0};
};

}  // namespace ptk::engine

#endif  // PTK_ENGINE_RANKING_ENGINE_H_
