#include "engine/ranking_engine.h"

#include <array>
#include <utility>

#include "core/bound_selector.h"
#include "core/brute_force_selector.h"
#include "core/multi_quota.h"
#include "core/random_selector.h"

namespace ptk::engine {

namespace {

constexpr std::array<std::pair<SelectorKind, std::string_view>, 7> kKindNames =
    {{
        {SelectorKind::kBruteForce, "BF"},
        {SelectorKind::kPBTree, "PBTREE"},
        {SelectorKind::kOpt, "OPT"},
        {SelectorKind::kRand, "RAND"},
        {SelectorKind::kRandK, "RAND_K"},
        {SelectorKind::kHrs1, "HRS1"},
        {SelectorKind::kHrs2, "HRS2"},
    }};

}  // namespace

std::string_view SelectorKindName(SelectorKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "?";
}

std::optional<SelectorKind> SelectorKindFromName(std::string_view name) {
  for (const auto& [kind, kind_name] : kKindNames) {
    if (kind_name == name) return kind;
  }
  return std::nullopt;
}

std::vector<SelectorKind> AllSelectorKinds() {
  std::vector<SelectorKind> kinds;
  kinds.reserve(kKindNames.size());
  for (const auto& [kind, name] : kKindNames) kinds.push_back(kind);
  return kinds;
}

RankingEngine::RankingEngine(const model::Database& db, const Options& options)
    : base_(&db),
      options_(options),
      evaluator_(db, options.k, options.order, options.enumerator),
      overlay_(db) {}

std::shared_ptr<const rank::MembershipCalculator> RankingEngine::membership() {
  if (membership_ == nullptr) {
    membership_ = std::make_shared<rank::MembershipCalculator>(working_db(),
                                                               options_.k);
  }
  return membership_;
}

const pbtree::PBTree& RankingEngine::tree() {
  if (tree_ == nullptr) {
    pbtree::PBTree::Options tree_options;
    tree_options.fanout = options_.fanout;
    tree_ = std::make_unique<pbtree::PBTree>(working_db(), tree_options);
  }
  return *tree_;
}

util::Status RankingEngine::Fold(model::ObjectId smaller,
                                 model::ObjectId larger, bool update_working,
                                 FoldOutcome* outcome) {
  if (smaller < 0 || smaller >= base_->num_objects() || larger < 0 ||
      larger >= base_->num_objects() || smaller == larger) {
    return util::Status::InvalidArgument(
        "Fold: invalid pair (" + std::to_string(smaller) + ", " +
        std::to_string(larger) + ")");
  }

  // Exact feasibility gate: Eq. 5 is undefined when no possible world
  // survives, so such answers are discarded (the conflict-resolution
  // behaviour of Fig. 2's server).
  pw::ConstraintSet candidate = constraints_;
  candidate.Add(smaller, larger);
  if (evaluator_.ConstraintProbability(candidate) <= 0.0) {
    ++counters_.folds_rejected;
    *outcome = FoldOutcome::kContradictory;
    return util::Status::OK();
  }

  if (update_working) {
    const auto& so = working_db().object(smaller);
    const auto& lo = working_db().object(larger);
    // p'_smaller(i) ∝ p(i) · Pr(larger > i); p'_larger(j) ∝ p(j) ·
    // Pr(smaller < j); both with pre-update marginals. The overlay
    // normalizes, so the raw products are passed through.
    std::vector<double> ps(so.num_instances());
    std::vector<double> pl(lo.num_instances());
    double total_s = 0.0, total_l = 0.0;
    for (const auto& inst : so.instances()) {
      ps[inst.iid] = inst.prob * lo.MassGreater(inst);
      total_s += ps[inst.iid];
    }
    for (const auto& inst : lo.instances()) {
      pl[inst.iid] = inst.prob * so.MassLess(inst);
      total_l += pl[inst.iid];
    }
    if (total_s <= 0.0 || total_l <= 0.0) {
      // The marginal approximation zeroed an object even though the exact
      // joint accepts the answer; keep the engine consistent by dropping
      // the answer entirely, as AdaptiveCleaner always has.
      ++counters_.folds_rejected;
      *outcome = FoldOutcome::kDegenerate;
      return util::Status::OK();
    }
    util::Status s = overlay_.Reweight(smaller, ps);
    if (!s.ok()) return s.WithContext("Fold: reweight smaller");
    s = overlay_.Reweight(larger, pl);
    if (!s.ok()) return s.WithContext("Fold: reweight larger");

    // Per-object artifact maintenance — the whole point of the overlay:
    // everything else the calculator and the tree cache is untouched.
    if (membership_ != nullptr) {
      const std::array<model::ObjectId, 2> touched = {smaller, larger};
      membership_->RefreshObjects(touched);
    }
    if (tree_ != nullptr) {
      tree_->UpdateObject(smaller);
      tree_->UpdateObject(larger);
    }
  }

  constraints_ = std::move(candidate);
  ++version_;
  ++counters_.folds_applied;
  *outcome = FoldOutcome::kApplied;
  return util::Status::OK();
}

core::SelectorOptions RankingEngine::BaseSelectorOptions() const {
  core::SelectorOptions o;
  o.k = options_.k;
  o.order = options_.order;
  o.enumerator = options_.enumerator;
  o.fanout = options_.fanout;
  o.seed = options_.seed;
  o.rand_k_fraction = options_.rand_k_fraction;
  o.candidate_pool = options_.candidate_pool;
  o.parallel = options_.parallel;
  return o;
}

std::unique_ptr<core::PairSelector> RankingEngine::MakeSelector(
    SelectorKind kind) {
  core::SelectorOptions o = BaseSelectorOptions();
  // Attach only the artifacts the kind consumes, so e.g. a BF run never
  // pays for a PB-tree build.
  const bool needs_membership =
      kind != SelectorKind::kBruteForce && kind != SelectorKind::kRand;
  const bool needs_tree =
      kind == SelectorKind::kPBTree || kind == SelectorKind::kOpt ||
      kind == SelectorKind::kHrs1 || kind == SelectorKind::kHrs2;
  if (needs_membership) o.membership = membership();
  if (needs_tree) o.shared_tree = &tree();

  const model::Database& db = working_db();
  switch (kind) {
    case SelectorKind::kBruteForce:
      return std::make_unique<core::BruteForceSelector>(db, o);
    case SelectorKind::kPBTree:
      return std::make_unique<core::BoundSelector>(
          db, o, core::BoundSelector::Mode::kBasic);
    case SelectorKind::kOpt:
      return std::make_unique<core::BoundSelector>(
          db, o, core::BoundSelector::Mode::kOptimized);
    case SelectorKind::kRand:
      return std::make_unique<core::RandomSelector>(
          db, o, core::RandomSelector::Mode::kUniform);
    case SelectorKind::kRandK:
      return std::make_unique<core::RandomSelector>(
          db, o, core::RandomSelector::Mode::kTopFraction);
    case SelectorKind::kHrs1:
      return std::make_unique<core::Hrs1Selector>(db, o);
    case SelectorKind::kHrs2:
      return std::make_unique<core::Hrs2Selector>(db, o);
  }
  return nullptr;  // unreachable
}

util::Status RankingEngine::EnsureDistribution() const {
  if (dist_valid_ && dist_version_ == version_) {
    ++counters_.distribution_hits;
    return util::Status::OK();
  }
  pw::TopKDistribution dist;
  util::Status s = evaluator_.Distribution(
      constraints_.empty() ? nullptr : &constraints_, &dist);
  if (!s.ok()) return s;
  ++counters_.enumerations;
  dist_ = std::move(dist);
  quality_ = dist_.Entropy();
  dist_valid_ = true;
  dist_version_ = version_;
  return util::Status::OK();
}

util::Status RankingEngine::Distribution(pw::TopKDistribution* out) const {
  util::Status s = EnsureDistribution();
  if (!s.ok()) return s;
  *out = dist_;
  return util::Status::OK();
}

util::Status RankingEngine::Quality(double* h) const {
  util::Status s = EnsureDistribution();
  if (!s.ok()) return s;
  *h = quality_;
  return util::Status::OK();
}

}  // namespace ptk::engine
