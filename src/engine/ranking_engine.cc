#include "engine/ranking_engine.h"

#include <algorithm>
#include <array>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ptk::engine {

namespace {

/// Registry handles for the engine layer, resolved once per process.
struct EngineMetrics {
  obs::Histogram* fold_seconds;
  obs::Counter* folds_applied;
  obs::Counter* folds_rejected;
  obs::Counter* overlay_reweights;
  obs::Counter* distribution_builds;
  obs::Counter* distribution_memo_hits;

  static const EngineMetrics& Get() {
    static const EngineMetrics metrics = {
        obs::GetHistogram("ptk_engine_fold_seconds",
                          "Latency of RankingEngine::Fold"),
        obs::GetCounter("ptk_engine_folds_applied_total",
                        "Answers folded into the constraint set"),
        obs::GetCounter("ptk_engine_folds_rejected_total",
                        "Answers rejected (contradictory or degenerate)"),
        obs::GetCounter("ptk_engine_overlay_reweights_total",
                        "Per-object in-place marginal reweights"),
        obs::GetCounter("ptk_engine_distribution_builds_total",
                        "Full conditioned top-k distribution builds"),
        obs::GetCounter("ptk_engine_distribution_memo_hits_total",
                        "Distribution/Quality reads served by the memo"),
    };
    return metrics;
  }
};

/// Per-semantics uncertainty-evaluation counters, label-in-name (DESIGN.md
/// §4.10). Only the non-default objectives ever touch these, so the
/// default metrics output is unchanged.
obs::Counter* SemanticsEvalsCounter(std::string_view semantics) {
  return obs::GetCounter(
      "ptk_engine_semantics_evals_total{semantics=\"" +
          std::string(semantics) + "\"}",
      "Objective uncertainty evaluations per ranking semantics");
}

}  // namespace

RankingEngine::RankingEngine(const model::Database& db, const Options& options)
    : base_(&db),
      options_(options),
      evaluator_(db, options.k, options.order, options.enumerator),
      overlay_(db),
      semantics_(core::MakeSemantics(options.semantics)) {}

void RankingEngine::PrepareWorkingCopy() { overlay_.Materialize(); }

std::shared_ptr<const rank::MembershipCalculator>
RankingEngine::BaseMembership() {
  if (base_membership_ == nullptr) {
    const auto& shared = options_.shared_membership;
    if (shared != nullptr && &shared->db() == base_ &&
        shared->base_calc() == nullptr &&
        shared->k() == std::clamp(options_.k, 1, base_->num_objects()) &&
        shared->db_version() == base_->mutation_version()) {
      base_membership_ = shared;
    } else {
      base_membership_ =
          std::make_shared<rank::MembershipCalculator>(*base_, options_.k);
    }
  }
  return base_membership_;
}

std::shared_ptr<const pbtree::PBTree> RankingEngine::BaseTree() {
  if (base_tree_ == nullptr) {
    const auto& shared = options_.shared_tree;
    if (shared != nullptr && &shared->db() == base_) {
      base_tree_ = shared;
    } else {
      pbtree::PBTree::Options tree_options;
      tree_options.fanout = options_.fanout;
      base_tree_ = std::make_shared<const pbtree::PBTree>(*base_,
                                                          tree_options);
    }
  }
  return base_tree_;
}

std::shared_ptr<util::EpochManager> RankingEngine::Epochs() {
  if (epochs_ == nullptr) {
    epochs_ = options_.epochs != nullptr
                  ? options_.epochs
                  : std::make_shared<util::EpochManager>();
  }
  return epochs_;
}

std::shared_ptr<const rank::MembershipCalculator> RankingEngine::membership() {
  if (!overlay_.materialized()) return BaseMembership();
  if (delta_membership_ == nullptr) {
    // Layers override prefix columns over the shared base calculator; the
    // constructor scans the delta's current overrides, so building late
    // (or after a snapshot restore) is equivalent to building eagerly.
    delta_membership_ = std::make_shared<rank::MembershipCalculator>(
        BaseMembership(), working_db());
  }
  return delta_membership_;
}

const pbtree::TreeReader& RankingEngine::tree() {
  if (!overlay_.materialized()) return *BaseTree();
  if (delta_tree_ == nullptr) {
    delta_tree_ = std::make_unique<pbtree::DeltaTree>(BaseTree(),
                                                      working_db(), Epochs());
  }
  return *delta_tree_;
}

RankingEngine::MemoryFootprint RankingEngine::DeltaMemory() const {
  MemoryFootprint footprint;
  footprint.overlay_bytes = overlay_.DeltaBytes();
  if (delta_membership_ != nullptr) {
    footprint.membership_bytes = delta_membership_->DeltaBytes();
  }
  if (delta_tree_ != nullptr) {
    footprint.tree_bytes = delta_tree_->delta_bytes();
  }
  return footprint;
}

util::Status RankingEngine::Fold(model::ObjectId smaller,
                                 model::ObjectId larger, bool update_working,
                                 FoldOutcome* outcome) {
  const EngineMetrics& metrics = EngineMetrics::Get();
  obs::ScopedTimer fold_timer(metrics.fold_seconds);
  if (smaller < 0 || smaller >= base_->num_objects() || larger < 0 ||
      larger >= base_->num_objects() || smaller == larger) {
    return util::Status::InvalidArgument(
        "Fold: invalid pair (" + std::to_string(smaller) + ", " +
        std::to_string(larger) + ")");
  }

  // Exact feasibility gate: Eq. 5 is undefined when no possible world
  // survives, so such answers are discarded (the conflict-resolution
  // behaviour of Fig. 2's server).
  pw::ConstraintSet candidate = constraints_;
  candidate.Add(smaller, larger);
  if (evaluator_.ConstraintProbability(candidate) <= 0.0) {
    folds_rejected_.fetch_add(1, std::memory_order_relaxed);
    metrics.folds_rejected->Add();
    *outcome = FoldOutcome::kContradictory;
    return util::Status::OK();
  }

  // A marginal-reading objective sees answers only through the working
  // copy, so it forces the reweight regardless of the caller's choice.
  // The OR is applied identically on live folds and WAL replays (which
  // journal the *requested* flag), keeping recovery deterministic.
  const bool fold_working =
      update_working || semantics_->requires_working_fold();
  if (fold_working) {
    const auto& so = working_db().object(smaller);
    const auto& lo = working_db().object(larger);
    // p'_smaller(i) ∝ p(i) · Pr(larger > i); p'_larger(j) ∝ p(j) ·
    // Pr(smaller < j); both with pre-update marginals. The overlay
    // normalizes, so the raw products are passed through.
    std::vector<double> ps(so.num_instances());
    std::vector<double> pl(lo.num_instances());
    double total_s = 0.0, total_l = 0.0;
    for (const auto& inst : so.instances()) {
      ps[inst.iid] = inst.prob * lo.MassGreater(inst);
      total_s += ps[inst.iid];
    }
    for (const auto& inst : lo.instances()) {
      pl[inst.iid] = inst.prob * so.MassLess(inst);
      total_l += pl[inst.iid];
    }
    if (total_s <= 0.0 || total_l <= 0.0) {
      // The marginal approximation zeroed an object even though the exact
      // joint accepts the answer; keep the engine consistent by dropping
      // the answer entirely, as AdaptiveCleaner always has.
      folds_rejected_.fetch_add(1, std::memory_order_relaxed);
      metrics.folds_rejected->Add();
      *outcome = FoldOutcome::kDegenerate;
      return util::Status::OK();
    }
    util::Status s = overlay_.Reweight(smaller, ps);
    if (!s.ok()) return s.WithContext("Fold: reweight smaller");
    s = overlay_.Reweight(larger, pl);
    if (!s.ok()) return s.WithContext("Fold: reweight larger");
    metrics.overlay_reweights->Add(2);

    // Per-object artifact maintenance — the whole point of the delta
    // layers: only the two touched objects' columns / tree paths move,
    // everything else stays the shared base's.
    if (delta_membership_ != nullptr) {
      const std::array<model::ObjectId, 2> touched = {smaller, larger};
      delta_membership_->RefreshObjects(touched);
    }
    if (delta_tree_ != nullptr) {
      delta_tree_->UpdateObject(smaller);
      delta_tree_->UpdateObject(larger);
    }
  }

  constraints_ = std::move(candidate);
  ++version_;
  if (fold_working) {
    semantics_->OnFold(working_db(), smaller, larger);
  }
  folds_applied_.fetch_add(1, std::memory_order_relaxed);
  metrics.folds_applied->Add();
  *outcome = FoldOutcome::kApplied;
  return util::Status::OK();
}

util::Status RankingEngine::RestoreSnapshot(
    const std::vector<std::pair<model::ObjectId, model::ObjectId>>&
        constraints,
    uint64_t version, const std::vector<RestoredWeights>& working) {
  if (version_ != 0 || !constraints_.empty() || overlay_.materialized()) {
    return util::Status::FailedPrecondition(
        "RestoreSnapshot: engine already has state (restore targets a "
        "fresh engine)");
  }
  // ConstraintSet::Add dedups, so the snapshotted set can be smaller than
  // the fold count but never larger.
  if (version < constraints.size()) {
    return util::Status::InvalidArgument(
        "RestoreSnapshot: version " + std::to_string(version) +
        " below constraint count " + std::to_string(constraints.size()));
  }
  for (const auto& [smaller, larger] : constraints) {
    if (smaller < 0 || smaller >= base_->num_objects() || larger < 0 ||
        larger >= base_->num_objects() || smaller == larger) {
      return util::Status::InvalidArgument(
          "RestoreSnapshot: invalid constraint (" + std::to_string(smaller) +
          ", " + std::to_string(larger) + ")");
    }
  }
  pw::ConstraintSet restored;
  for (const auto& [smaller, larger] : constraints) {
    restored.Add(smaller, larger);
  }
  if (!working.empty()) {
    PrepareWorkingCopy();
    for (const RestoredWeights& weights : working) {
      if (util::Status s = overlay_.RestoreExact(weights.oid, weights.probs);
          !s.ok()) {
        return s.WithContext("RestoreSnapshot");
      }
    }
  }
  constraints_ = std::move(restored);
  version_ = version;
  // Restored probabilities arrived without OnFold notifications; the
  // objective rebuilds its memo lazily from the restored marginals, which
  // the determinism contract makes bit-identical to the incremental state
  // of the uninterrupted process.
  semantics_->Invalidate();
  return util::Status::OK();
}

core::SelectorOptions RankingEngine::BaseSelectorOptions() const {
  core::SelectorOptions o;
  o.k = options_.k;
  o.order = options_.order;
  o.enumerator = options_.enumerator;
  o.fanout = options_.fanout;
  o.seed = options_.seed;
  o.rand_k_fraction = options_.rand_k_fraction;
  o.candidate_pool = options_.candidate_pool;
  o.parallel = options_.parallel;
  // o.enumerator already carries the token; mirroring it onto the selector
  // options makes the batch loops poll it too.
  o.cancel = options_.enumerator.cancel;
  return o;
}

std::unique_ptr<core::PairSelector> RankingEngine::MakeSelector(
    SelectorKind kind) {
  core::SelectorOptions o = BaseSelectorOptions();
  // Attach only the artifacts the kind consumes, so e.g. a BF run never
  // pays for a PB-tree build.
  const bool needs_membership =
      kind != SelectorKind::kBruteForce && kind != SelectorKind::kRand;
  const bool needs_tree =
      kind == SelectorKind::kPBTree || kind == SelectorKind::kOpt ||
      kind == SelectorKind::kHrs1 || kind == SelectorKind::kHrs2;
  if (needs_membership) o.membership = membership();
  if (needs_tree) o.shared_tree = &tree();
  std::unique_ptr<core::PairSelector> inner =
      core::MakeSelector(working_db(), kind, o);
  if (options_.semantics == core::SemanticsId::kEntropy) return inner;
  // Non-default objectives: the inner selector provides the candidate
  // pool (its EI scores target entropy), the wrapper rescores by the
  // active objective's expected improvement.
  return std::make_unique<core::RescoredSelector>(
      std::move(inner), semantics_.get(), SemanticsContextNow(),
      options_.candidate_pool);
}

util::Status RankingEngine::EnsureDistribution() const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  if (dist_valid_ && dist_version_ == version_) {
    distribution_hits_.fetch_add(1, std::memory_order_relaxed);
    metrics.distribution_memo_hits->Add();
    return util::Status::OK();
  }
  pw::TopKDistribution dist;
  util::Status s = evaluator_.Distribution(
      constraints_.empty() ? nullptr : &constraints_, &dist);
  if (!s.ok()) return s;
  enumerations_.fetch_add(1, std::memory_order_relaxed);
  metrics.distribution_builds->Add();
  dist_ = std::move(dist);
  if (options_.semantics == core::SemanticsId::kEntropy) {
    // The paper's objective, extracted behind the interface: the entropy
    // semantics reduces the memoized distribution to the same
    // dist_.Entropy() bits the engine always reported.
    core::SemanticsContext ctx = SemanticsContextNow();
    ctx.distribution = &dist_;
    quality_ = semantics_->Uncertainty(ctx);
  } else {
    quality_ = dist_.Entropy();
  }
  dist_valid_ = true;
  dist_version_ = version_;
  return util::Status::OK();
}

core::SemanticsContext RankingEngine::SemanticsContextNow() const {
  core::SemanticsContext ctx;
  ctx.base = base_;
  ctx.working = &working_db();
  ctx.k = options_.k;
  ctx.order = options_.order;
  return ctx;
}

util::StatusOr<pw::TopKDistribution> RankingEngine::Distribution() const {
  util::Status s = EnsureDistribution();
  if (!s.ok()) return s;
  return dist_;
}

util::StatusOr<double> RankingEngine::Quality() const {
  if (options_.semantics == core::SemanticsId::kEntropy) {
    util::Status s = EnsureDistribution();
    if (!s.ok()) return s;
    return quality_;
  }
  if (sem_quality_valid_ && sem_quality_version_ == version_) {
    distribution_hits_.fetch_add(1, std::memory_order_relaxed);
    EngineMetrics::Get().distribution_memo_hits->Add();
    return sem_quality_;
  }
  sem_quality_ = semantics_->Uncertainty(SemanticsContextNow());
  sem_quality_valid_ = true;
  sem_quality_version_ = version_;
  SemanticsEvalsCounter(semantics_->name())->Add();
  return sem_quality_;
}

util::StatusOr<std::vector<topk::ScoredObject>> RankingEngine::PointAnswer()
    const {
  core::SemanticsContext ctx = SemanticsContextNow();
  if (semantics_->needs_distribution()) {
    util::Status s = EnsureDistribution();
    if (!s.ok()) return s;
    ctx.distribution = &dist_;
  }
  return semantics_->PointAnswer(ctx);
}

}  // namespace ptk::engine
