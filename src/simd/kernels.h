#ifndef PTK_SIMD_KERNELS_H_
#define PTK_SIMD_KERNELS_H_

// Portable vectorized math kernels for the library's inner loops: the
// Poisson-binomial convolve step and its prefix-sum reductions, the
// batched entropy sum behind EI scoring, and the Δ-bound sweep's
// proportional-transfer pass (DESIGN.md §4.12).
//
// Determinism contract: every kernel is defined over a fixed logical lane
// group of kLanes = 4 doubles, independent of the instruction set that
// executes it. The scalar reference, the baseline-ISA build (SSE2 on
// x86-64, NEON on aarch64), and the AVX2 variant all instantiate the same
// templated bodies (kernels_impl.h) and are compiled with
// -ffp-contract=off, so they perform the identical sequence of IEEE-754
// operations lane by lane and return bit-identical results. A PTK_SIMD=OFF
// build therefore reproduces the PTK_SIMD=ON output byte for byte
// (pinned by simd_test and tools/check.sh).
//
// Reductions are *striped*: element i accumulates into lane i % 4, the
// tail folds into lanes 0..r-1 in order, and lanes combine as
// (l0 + l1) + (l2 + l3). This reassociates relative to a sequential
// left-to-right sum — by at most a few ULP for the probability masses
// involved — but identically at every dispatch level.
//
// The batched entropy kernel uses a polynomial log (atanh form, see
// kernels_impl.h) instead of libm: each -p ln p term is within 4 ULP of
// the correctly-rounded value (documented bound; pinned by simd_test
// against a long-double reference). It too is bit-identical across levels.

#include <cstdint>

// -DPTK_SIMD=0 (CMake option PTK_SIMD=OFF) compiles the scalar reference
// only; vector instantiations and runtime dispatch disappear.
#ifndef PTK_SIMD
#define PTK_SIMD 1
#endif

namespace ptk::simd {

inline constexpr int kLanes = 4;

/// Dispatchable implementations, from portable reference to widest ISA.
enum class Level : int {
  kScalar = 0,   // lane-exact scalar reference (the PTK_SIMD=OFF build)
  kGeneric = 1,  // compiler vector extensions at the baseline ISA
  kAvx2 = 2,     // AVX2 (x86-64 only, runtime-detected)
};

struct KernelOps {
  // In-place Poisson-binomial convolve push: dp[0..n-1] holds the current
  // vector and dp[n] a zero slot; computes dp'[j] = dp[j](1-q) + dp[j-1] q
  // for j = n..1 descending and dp'[0] = dp[0](1-q). Element-wise (no
  // reassociation), so bit-identical to the textbook scalar loop.
  void (*convolve_step)(double* dp, int n, double q);

  // Striped sum of v[0..n-1] (see header comment for the lane order).
  double (*sum)(const double* v, int n);

  // Striped Σ -p ln p over p[0..n-1] with the polynomial log; terms with
  // p <= 0 contribute exactly 0 (EntropyTerm's clamp convention).
  double (*entropy_sum)(const double* p, int n);

  // Striped masked totals: *s_true = Σ w[i]·mask[i], *s_false =
  // Σ w[i]·(1-mask[i]); mask values are exactly 0.0 or 1.0.
  void (*masked_pair_sums)(const double* w, const double* mask, int n,
                           double* s_true, double* s_false);

  // Δ-bound proportional transfer (Algorithm 5 inner loop): for each i,
  // t = scale·joint[i]; weight[i] -= t; t accumulates (striped) into
  // *t_true when mask[i] == 1.0, else into *t_false.
  void (*sweep_transfer)(const double* joint, const double* mask,
                         double* weight, int n, double scale,
                         double* t_true, double* t_false);

  const char* name;
};

/// The kernel table for one specific level. Requesting a level that is not
/// compiled in (or not supported by the CPU) falls back to the best
/// available one at or below it.
const KernelOps& OpsFor(Level level);

/// True when `level` is compiled in and executable on this CPU.
bool LevelAvailable(Level level);

/// The dispatched kernel table: the widest available level, overridable
/// with PTK_SIMD_LEVEL=scalar|generic|avx2 (resolved once, at first use).
const KernelOps& Ops();

/// Name of the level Ops() resolved to ("scalar", "sse2"/"neon", "avx2").
const char* ActiveLevelName();

/// Test/bench hook: repoints Ops() at the given level (clamped to what is
/// available). Not thread-safe; call only from single-threaded setup.
void SetLevelForTesting(Level level);

}  // namespace ptk::simd

#endif  // PTK_SIMD_KERNELS_H_
