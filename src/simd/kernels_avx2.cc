// AVX2 instantiation of the shared kernel bodies (kernels_impl.h). This TU
// is compiled with -mavx2 -ffp-contract=off on x86-64 builds only; runtime
// dispatch in kernels.cc calls Avx2OpsImpl() after __builtin_cpu_supports
// confirms the host executes AVX2. The bodies are identical to the scalar
// and baseline instantiations, so results are bit-identical — only wider.

#if defined(__AVX2__)

#include "simd/kernels_impl.h"

namespace ptk::simd {
namespace {

// Internal linkage: never merges with the baseline TU's instantiation.
struct Avx2Vec : NativeVec {};

}  // namespace

const KernelOps& Avx2OpsImpl() {
  static const KernelOps ops = MakeOps<Avx2Vec>("avx2");
  return ops;
}

}  // namespace ptk::simd

#else
// Built without -mavx2 (non-x86 target): nothing to provide; dispatch
// never references Avx2OpsImpl in that configuration.
#endif
