#include "simd/kernels.h"

#include <cstdlib>
#include <cstring>

#include "simd/kernels_impl.h"

// Compiled with -ffp-contract=off (see src/CMakeLists.txt): the kernel
// determinism contract in kernels.h forbids FMA contraction.

namespace ptk::simd {
namespace {

// Internal-linkage wrapper types so instantiations in this TU can never
// merge with the AVX2 TU's (which compiles the same templates under
// different codegen flags).
struct RefVec : ScalarVec {};

const KernelOps& ScalarOps() {
  static const KernelOps ops = MakeOps<RefVec>("scalar");
  return ops;
}

#if PTK_SIMD
struct BaselineVec : NativeVec {};

const KernelOps& GenericOps() {
  static const KernelOps ops = MakeOps<BaselineVec>(
#if defined(__aarch64__)
      "neon"
#elif defined(__x86_64__) || defined(_M_X64)
      "sse2"
#else
      "generic"
#endif
  );
  return ops;
}
#endif  // PTK_SIMD

bool Avx2Executable() {
#if PTK_SIMD && defined(PTK_SIMD_HAVE_AVX2_TU)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

Level Resolve(Level level) {
  if (level == Level::kAvx2 && !Avx2Executable()) level = Level::kGeneric;
#if !PTK_SIMD
  level = Level::kScalar;
#endif
  return level;
}

Level BestLevel() { return Resolve(Level::kAvx2); }

Level LevelFromEnv(Level fallback) {
  const char* env = std::getenv("PTK_SIMD_LEVEL");
  if (env == nullptr || *env == '\0') return fallback;
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(env, "generic") == 0 || std::strcmp(env, "sse2") == 0 ||
      std::strcmp(env, "neon") == 0) {
    return Resolve(Level::kGeneric);
  }
  if (std::strcmp(env, "avx2") == 0) return Resolve(Level::kAvx2);
  return fallback;  // unknown value: keep the detected level
}

const KernelOps*& ActiveOpsSlot() {
  static const KernelOps* active = &OpsFor(LevelFromEnv(BestLevel()));
  return active;
}

}  // namespace

#if PTK_SIMD && defined(PTK_SIMD_HAVE_AVX2_TU)
// Defined in kernels_avx2.cc (compiled with -mavx2).
const KernelOps& Avx2OpsImpl();
#endif

const KernelOps& OpsFor(Level level) {
  switch (Resolve(level)) {
    case Level::kScalar:
      return ScalarOps();
#if PTK_SIMD
    case Level::kGeneric:
      return GenericOps();
#if defined(PTK_SIMD_HAVE_AVX2_TU)
    case Level::kAvx2:
      return Avx2OpsImpl();
#endif
#endif
    default:
      return ScalarOps();
  }
}

bool LevelAvailable(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kGeneric:
      return PTK_SIMD != 0;
    case Level::kAvx2:
      return Avx2Executable();
  }
  return false;
}

const KernelOps& Ops() { return *ActiveOpsSlot(); }

const char* ActiveLevelName() { return Ops().name; }

void SetLevelForTesting(Level level) {
  ActiveOpsSlot() = &OpsFor(level);
}

}  // namespace ptk::simd
