#ifndef PTK_SIMD_KERNELS_IMPL_H_
#define PTK_SIMD_KERNELS_IMPL_H_

// Shared kernel bodies for every dispatch level (see kernels.h for the
// determinism contract). The kernels are templates over a lane-group
// abstraction V providing 4-double vectors (V::D) and their 4×int64
// companions (V::I). Two implementations exist:
//
//   ScalarVec — plain arrays with per-lane loops; the reference. This is
//               what a PTK_SIMD=OFF build runs.
//   NativeVec — GCC/Clang vector extensions; lowers to SSE2/NEON in a
//               baseline TU and to AVX2 in a TU compiled with -mavx2.
//
// Because both execute the same template body, and every kernel TU is
// compiled with -ffp-contract=off (no FMA contraction), all levels perform
// the identical element-wise IEEE-754 operation sequence and produce
// bit-identical results. Each instantiating TU wraps its instantiation in
// an anonymous namespace so differently-compiled copies never merge.
//
// The include is self-contained on purpose: no libm calls inside kernels
// (the batched entropy uses the polynomial log below), so results cannot
// vary with the host's math library either.

#include <bit>
#include <cstring>

#include "simd/kernels.h"

namespace ptk::simd {

// ---------------------------------------------------------------------------
// Lane-group abstractions.

struct ScalarVec {
  struct D {
    double l[kLanes];
  };
  struct I {
    long long l[kLanes];
  };

  static D LoadD(const double* p) {
    D v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = p[i];
    return v;
  }
  static void StoreD(double* p, D v) {
    for (int i = 0; i < kLanes; ++i) p[i] = v.l[i];
  }
  static D Set1(double x) {
    D v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = x;
    return v;
  }
  static I Set1I(long long x) {
    I v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = x;
    return v;
  }
  static D Add(D a, D b) {
    D v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] + b.l[i];
    return v;
  }
  static D Sub(D a, D b) {
    D v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] - b.l[i];
    return v;
  }
  static D Mul(D a, D b) {
    D v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] * b.l[i];
    return v;
  }
  static D Div(D a, D b) {
    D v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] / b.l[i];
    return v;
  }
  static I CmpGt(D a, D b) {
    I v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] > b.l[i] ? -1LL : 0LL;
    return v;
  }
  static I CmpLt(D a, D b) {
    I v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] < b.l[i] ? -1LL : 0LL;
    return v;
  }
  static D Select(I m, D a, D b) {
    D v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = m.l[i] ? a.l[i] : b.l[i];
    return v;
  }
  static I SelectI(I m, I a, I b) {
    I v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = m.l[i] ? a.l[i] : b.l[i];
    return v;
  }
  static I BitcastI(D a) {
    I v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = std::bit_cast<long long>(a.l[i]);
    return v;
  }
  static D BitcastD(I a) {
    D v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = std::bit_cast<double>(a.l[i]);
    return v;
  }
  static I Shr(I a, int k) {
    I v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] >> k;
    return v;
  }
  static I AndI(I a, I b) {
    I v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] & b.l[i];
    return v;
  }
  static I OrI(I a, I b) {
    I v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] | b.l[i];
    return v;
  }
  static I SubI(I a, I b) {
    I v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = a.l[i] - b.l[i];
    return v;
  }
  static D ToD(I a) {
    D v;
    for (int i = 0; i < kLanes; ++i) v.l[i] = static_cast<double>(a.l[i]);
    return v;
  }
};

#if PTK_SIMD

struct NativeVec {
  typedef double D __attribute__((vector_size(kLanes * sizeof(double))));
  typedef long long I
      __attribute__((vector_size(kLanes * sizeof(long long))));

  static D LoadD(const double* p) {
    D v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static void StoreD(double* p, D v) { std::memcpy(p, &v, sizeof(v)); }
  static D Set1(double x) { return D{x, x, x, x}; }
  static I Set1I(long long x) { return I{x, x, x, x}; }
  static D Add(D a, D b) { return a + b; }
  static D Sub(D a, D b) { return a - b; }
  static D Mul(D a, D b) { return a * b; }
  static D Div(D a, D b) { return a / b; }
  static I CmpGt(D a, D b) { return (I)(a > b); }
  static I CmpLt(D a, D b) { return (I)(a < b); }
  static D Select(I m, D a, D b) {
    return (D)((m & (I)a) | (~m & (I)b));
  }
  static I SelectI(I m, I a, I b) { return (m & a) | (~m & b); }
  static I BitcastI(D a) { return (I)a; }
  static D BitcastD(I a) { return (D)a; }
  static I Shr(I a, int k) { return a >> k; }
  static I AndI(I a, I b) { return a & b; }
  static I OrI(I a, I b) { return a | b; }
  static I SubI(I a, I b) { return a - b; }
  static D ToD(I a) { return __builtin_convertvector(a, D); }
};

#endif  // PTK_SIMD

// ---------------------------------------------------------------------------
// Kernel bodies.

template <class V>
struct KernelsT {
  using D = typename V::D;
  using I = typename V::I;

  // Fixed lane-combine order for every striped reduction: (l0+l1)+(l2+l3).
  static double Combine(D acc) {
    double a[kLanes];
    V::StoreD(a, acc);
    return (a[0] + a[1]) + (a[2] + a[3]);
  }

  // Loads the n < kLanes tail elements of v, zero-padded. Zero lanes are
  // exact no-ops in every striped reduction here (they add +0.0 or
  // multiply through a 0 weight), so padding preserves the stripe
  // semantics bit for bit.
  static D LoadTail(const double* v, int n) {
    double buf[kLanes] = {0.0, 0.0, 0.0, 0.0};
    for (int i = 0; i < n; ++i) buf[i] = v[i];
    return V::LoadD(buf);
  }

  static void ConvolveStep(double* dp, int n, double q) {
    // dp'[j] = dp[j](1-q) + dp[j-1]q, descending so every load sees the
    // old value. Element-wise: vector blocks and the scalar remainder
    // perform the identical per-element operations.
    const double one_minus_q = 1.0 - q;
    const D vq = V::Set1(q);
    const D vomq = V::Set1(one_minus_q);
    int j = n;
    for (; j >= kLanes; j -= kLanes) {
      const D cur = V::LoadD(dp + j - kLanes + 1);
      const D prev = V::LoadD(dp + j - kLanes);
      V::StoreD(dp + j - kLanes + 1,
                V::Add(V::Mul(cur, vomq), V::Mul(prev, vq)));
    }
    for (; j >= 1; --j) dp[j] = dp[j] * one_minus_q + dp[j - 1] * q;
    dp[0] *= one_minus_q;
  }

  static double Sum(const double* v, int n) {
    D acc = V::Set1(0.0);
    int i = 0;
    for (; i + kLanes <= n; i += kLanes) acc = V::Add(acc, V::LoadD(v + i));
    if (i < n) acc = V::Add(acc, LoadTail(v + i, n - i));
    return Combine(acc);
  }

  // ln(x) for 4 positive finite lanes via the atanh polynomial:
  //   x = m·2^e with m ∈ [√2/2, √2), r = (m-1)/(m+1),
  //   ln m = 2·atanh(r) = 2·(r + r·s·P(s)), s = r².
  // P is the degree-8 truncation of Σ s^k/(2k+3); with s ≤ 0.0295 the
  // truncation error is below 2^-55 relative, for a total bound of ≤ 4 ULP
  // (pinned by simd_test against a long-double reference). Subnormals are
  // pre-scaled by 2^54. Lanes must be > 0 (the caller sanitizes).
  static D Log(D x) {
    const D tiny_norm = V::Set1(2.2250738585072014e-308);  // DBL_MIN
    const I is_tiny = V::CmpLt(x, tiny_norm);
    const D xs = V::Select(is_tiny, V::Mul(x, V::Set1(0x1p54)), x);
    I bits = V::BitcastI(xs);
    // Biased exponent (sign bit is 0 for positive lanes); subtract the
    // subnormal pre-scale where it was applied.
    I e = V::SubI(V::Shr(bits, 52), V::Set1I(1023));
    e = V::SubI(e, V::SelectI(is_tiny, V::Set1I(54), V::Set1I(0)));
    D m = V::BitcastD(V::OrI(V::AndI(bits, V::Set1I(0x000FFFFFFFFFFFFFLL)),
                             V::Set1I(0x3FF0000000000000LL)));
    const I big = V::CmpGt(m, V::Set1(1.4142135623730951));  // m > √2
    e = V::SubI(e, V::SelectI(big, V::Set1I(-1), V::Set1I(0)));
    m = V::Select(big, V::Mul(m, V::Set1(0.5)), m);

    const D one = V::Set1(1.0);
    const D r = V::Div(V::Sub(m, one), V::Add(m, one));
    const D s = V::Mul(r, r);
    // Horner over 1/3, 1/5, …, 1/19.
    D p = V::Set1(1.0 / 19.0);
    p = V::Add(V::Mul(p, s), V::Set1(1.0 / 17.0));
    p = V::Add(V::Mul(p, s), V::Set1(1.0 / 15.0));
    p = V::Add(V::Mul(p, s), V::Set1(1.0 / 13.0));
    p = V::Add(V::Mul(p, s), V::Set1(1.0 / 11.0));
    p = V::Add(V::Mul(p, s), V::Set1(1.0 / 9.0));
    p = V::Add(V::Mul(p, s), V::Set1(1.0 / 7.0));
    p = V::Add(V::Mul(p, s), V::Set1(1.0 / 5.0));
    p = V::Add(V::Mul(p, s), V::Set1(1.0 / 3.0));
    const D log_m =
        V::Mul(V::Set1(2.0), V::Add(r, V::Mul(r, V::Mul(s, p))));

    // e·ln2 split so the high product is exact (|e| < 2^11, 2^21-aligned
    // mantissa in ln2_hi).
    const D ed = V::ToD(e);
    const D ln2_hi = V::Set1(6.93147180369123816490e-01);
    const D ln2_lo = V::Set1(1.90821492927058770002e-10);
    const D inner = V::Add(log_m, V::Mul(ed, ln2_lo));
    return V::Add(V::Mul(ed, ln2_hi), inner);
  }

  // One lane group of h(p) = -p ln p, with h(p) = 0 for p <= 0 (the
  // EntropyTerm clamp convention). Non-positive lanes are sanitized to 1
  // before the log so no Inf/NaN is ever produced, then masked out.
  static D EntropyTerms(D p) {
    const D zero = V::Set1(0.0);
    const I pos = V::CmpGt(p, zero);
    const D safe = V::Select(pos, p, V::Set1(1.0));
    const D h = V::Sub(zero, V::Mul(safe, Log(safe)));
    return V::Select(pos, h, zero);
  }

  static double EntropySum(const double* p, int n) {
    D acc = V::Set1(0.0);
    int i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      acc = V::Add(acc, EntropyTerms(V::LoadD(p + i)));
    }
    if (i < n) acc = V::Add(acc, EntropyTerms(LoadTail(p + i, n - i)));
    return Combine(acc);
  }

  static void MaskedPairSums(const double* w, const double* mask, int n,
                             double* s_true, double* s_false) {
    const D one = V::Set1(1.0);
    D acc_t = V::Set1(0.0);
    D acc_f = V::Set1(0.0);
    int i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      const D wv = V::LoadD(w + i);
      const D mv = V::LoadD(mask + i);
      acc_t = V::Add(acc_t, V::Mul(wv, mv));
      acc_f = V::Add(acc_f, V::Mul(wv, V::Sub(one, mv)));
    }
    if (i < n) {
      // Zero-padded weights contribute exactly 0 to both totals.
      const D wv = LoadTail(w + i, n - i);
      const D mv = LoadTail(mask + i, n - i);
      acc_t = V::Add(acc_t, V::Mul(wv, mv));
      acc_f = V::Add(acc_f, V::Mul(wv, V::Sub(one, mv)));
    }
    *s_true = Combine(acc_t);
    *s_false = Combine(acc_f);
  }

  static void SweepTransfer(const double* joint, const double* mask,
                            double* weight, int n, double scale,
                            double* t_true, double* t_false) {
    const D vs = V::Set1(scale);
    const D one = V::Set1(1.0);
    D acc_t = V::Set1(0.0);
    D acc_f = V::Set1(0.0);
    int i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      const D t = V::Mul(vs, V::LoadD(joint + i));
      V::StoreD(weight + i, V::Sub(V::LoadD(weight + i), t));
      const D mv = V::LoadD(mask + i);
      acc_t = V::Add(acc_t, V::Mul(t, mv));
      acc_f = V::Add(acc_f, V::Mul(t, V::Sub(one, mv)));
    }
    if (i < n) {
      // Padded lanes see joint = 0 and mask = 0 (t = 0 exactly); only the
      // live weight lanes are stored back.
      const int r = n - i;
      const D t = V::Mul(vs, LoadTail(joint + i, r));
      const D wv = V::Sub(LoadTail(weight + i, r), t);
      double wbuf[kLanes];
      V::StoreD(wbuf, wv);
      for (int j = 0; j < r; ++j) weight[i + j] = wbuf[j];
      const D mv = LoadTail(mask + i, r);
      acc_t = V::Add(acc_t, V::Mul(t, mv));
      acc_f = V::Add(acc_f, V::Mul(t, V::Sub(one, mv)));
    }
    *t_true = Combine(acc_t);
    *t_false = Combine(acc_f);
  }
};

template <class V>
inline KernelOps MakeOps(const char* name) {
  KernelOps ops;
  ops.convolve_step = &KernelsT<V>::ConvolveStep;
  ops.sum = &KernelsT<V>::Sum;
  ops.entropy_sum = &KernelsT<V>::EntropySum;
  ops.masked_pair_sums = &KernelsT<V>::MaskedPairSums;
  ops.sweep_transfer = &KernelsT<V>::SweepTransfer;
  ops.name = name;
  return ops;
}

}  // namespace ptk::simd

#endif  // PTK_SIMD_KERNELS_IMPL_H_
