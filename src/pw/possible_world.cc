#include "pw/possible_world.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace ptk::pw {

ExactEngine::ExactEngine(const model::Database& db, int64_t world_limit)
    : db_(&db), world_limit_(world_limit) {
  assert(db.finalized());
}

int64_t ExactEngine::NumWorlds() const {
  int64_t worlds = 1;
  for (const auto& obj : db_->objects()) {
    if (worlds > world_limit_) return worlds;  // already beyond any use
    worlds *= obj.num_instances();
  }
  return worlds;
}

util::Status ExactEngine::ForEachWorld(
    const std::function<void(std::span<const model::InstanceId>, double)>&
        fn) const {
  if (NumWorlds() > world_limit_) {
    return util::Status::ResourceExhausted(
        "possible world space exceeds the configured limit");
  }
  const int m = db_->num_objects();
  std::vector<model::InstanceId> iids(m, 0);
  std::function<void(int, double)> walk = [&](int depth, double prob) {
    if (depth == m) {
      fn(iids, prob);
      return;
    }
    const auto& insts = db_->object(depth).instances();
    for (const model::Instance& inst : insts) {
      iids[depth] = inst.iid;
      walk(depth + 1, prob * inst.prob);
    }
  };
  walk(0, 1.0);
  return util::Status::OK();
}

ResultKey WorldTopK(const model::Database& db,
                    std::span<const model::InstanceId> iids, int k) {
  const int m = db.num_objects();
  k = std::min(k, m);
  // Select the k smallest chosen instances by global position.
  std::vector<std::pair<model::Position, model::ObjectId>> ranked;
  ranked.reserve(m);
  for (model::ObjectId o = 0; o < m; ++o) {
    ranked.emplace_back(db.PositionOf({o, iids[o]}), o);
  }
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end());
  ResultKey key;
  key.reserve(k);
  for (int i = 0; i < k; ++i) key.push_back(ranked[i].second);
  return key;
}

util::Status ExactEngine::TopKDistributionOf(int k, OrderMode order,
                                             const ConstraintSet* constraints,
                                             TopKDistribution* out) const {
  if (k < 1 || k > db_->num_objects()) {
    return util::Status::InvalidArgument("k must be in [1, num_objects]");
  }
  TopKDistribution dist(order);
  double z = 0.0;
  const auto consistent = [&](std::span<const model::InstanceId> iids) {
    if (constraints == nullptr) return true;
    for (const PairwiseConstraint& c : constraints->constraints()) {
      const model::Position ps = db_->PositionOf({c.smaller, iids[c.smaller]});
      const model::Position pl = db_->PositionOf({c.larger, iids[c.larger]});
      if (ps >= pl) return false;
    }
    return true;
  };
  util::Status status =
      ForEachWorld([&](std::span<const model::InstanceId> iids, double p) {
        if (!consistent(iids)) return;
        z += p;
        dist.Add(WorldTopK(*db_, iids, k), p);
      });
  if (!status.ok()) return status;
  if (z <= 0.0) {
    return util::Status::InvalidArgument(
        "constraint set has zero probability (contradictory comparisons)");
  }
  dist.Scale(1.0 / z);
  *out = std::move(dist);
  return util::Status::OK();
}

}  // namespace ptk::pw
