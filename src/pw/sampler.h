#ifndef PTK_PW_SAMPLER_H_
#define PTK_PW_SAMPLER_H_

#include <cstdint>

#include "model/database.h"
#include "pw/constraint.h"
#include "pw/topk_distribution.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ptk::pw {

/// Monte-Carlo possible-world sampler: estimates the top-k result
/// distribution by sampling worlds instead of enumerating them. Used to
/// cross-validate the exact enumerator at scales the exhaustive oracle
/// cannot reach, and as a practical fallback in the flat-distribution
/// regime where even the merged-state enumeration is intractable.
///
/// Conditioning on a constraint set uses rejection sampling; the observed
/// acceptance rate estimates Pr(constraints).
class WorldSampler {
 public:
  explicit WorldSampler(const model::Database& db);

  struct Result {
    TopKDistribution distribution{OrderMode::kInsensitive};
    int64_t samples = 0;
    int64_t accepted = 0;

    double acceptance_rate() const {
      return samples > 0 ? static_cast<double>(accepted) / samples : 0.0;
    }
  };

  /// Draws `samples` worlds (before rejection) and accumulates the top-k
  /// results of those consistent with `constraints` (all, when null).
  /// The returned distribution is normalized over accepted samples.
  /// Fails with InvalidArgument if no sample satisfies the constraints.
  ///
  /// Sampling shards across `parallel`: shard s draws its share of the
  /// samples from an independent RNG stream seeded by (seed, s), and the
  /// partial distributions merge in shard order. The result therefore
  /// depends only on (seed, shard count) — a fixed seed at a fixed
  /// PTK_THREADS / parallel.threads setting is reproducible bit-for-bit,
  /// and a single shard reproduces the historical serial stream exactly.
  util::Status Estimate(int k, OrderMode order,
                        const ConstraintSet* constraints, int64_t samples,
                        uint64_t seed, Result* out,
                        const util::ParallelConfig& parallel = {}) const;

  /// Samples one world: iids[o] receives the chosen instance per object.
  void SampleWorld(util::Rng& rng, std::vector<model::InstanceId>* iids) const;

 private:
  const model::Database* db_;
  // Per-object cumulative probabilities for O(log m_i) inverse sampling.
  std::vector<std::vector<double>> cumulative_;
};

}  // namespace ptk::pw

#endif  // PTK_PW_SAMPLER_H_
