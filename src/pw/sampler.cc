#include "pw/sampler.h"

#include <algorithm>
#include <cassert>

#include "pw/possible_world.h"

namespace ptk::pw {

WorldSampler::WorldSampler(const model::Database& db) : db_(&db) {
  assert(db.finalized());
  cumulative_.reserve(db.num_objects());
  for (const auto& obj : db.objects()) {
    std::vector<double> cum;
    cum.reserve(obj.num_instances());
    double acc = 0.0;
    for (const auto& inst : obj.instances()) {
      acc += inst.prob;
      cum.push_back(acc);
    }
    cum.back() = 1.0;  // guard against rounding in the final bucket
    cumulative_.push_back(std::move(cum));
  }
}

void WorldSampler::SampleWorld(util::Rng& rng,
                               std::vector<model::InstanceId>* iids) const {
  iids->resize(db_->num_objects());
  for (model::ObjectId o = 0; o < db_->num_objects(); ++o) {
    const double u = rng.Uniform();
    const auto& cum = cumulative_[o];
    const auto it = std::upper_bound(cum.begin(), cum.end(), u);
    (*iids)[o] = static_cast<model::InstanceId>(
        std::min<size_t>(it - cum.begin(), cum.size() - 1));
  }
}

util::Status WorldSampler::Estimate(int k, OrderMode order,
                                    const ConstraintSet* constraints,
                                    int64_t samples, uint64_t seed,
                                    Result* out) const {
  if (k < 1 || k > db_->num_objects()) {
    return util::Status::InvalidArgument("k must be in [1, num_objects]");
  }
  if (samples < 1) {
    return util::Status::InvalidArgument("samples must be positive");
  }
  util::Rng rng(seed);
  Result result;
  result.distribution = TopKDistribution(order);
  std::vector<model::InstanceId> iids;
  const double weight = 1.0;  // normalized after the loop
  for (int64_t s = 0; s < samples; ++s) {
    SampleWorld(rng, &iids);
    ++result.samples;
    if (constraints != nullptr) {
      bool ok = true;
      for (const PairwiseConstraint& c : constraints->constraints()) {
        if (db_->PositionOf({c.smaller, iids[c.smaller]}) >=
            db_->PositionOf({c.larger, iids[c.larger]})) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
    }
    ++result.accepted;
    result.distribution.Add(WorldTopK(*db_, iids, k), weight);
  }
  if (result.accepted == 0) {
    return util::Status::InvalidArgument(
        "no sampled world satisfies the constraints");
  }
  result.distribution.Scale(1.0 / result.accepted);
  *out = std::move(result);
  return util::Status::OK();
}

}  // namespace ptk::pw
