#include "pw/sampler.h"

#include <algorithm>
#include <cassert>

#include "pw/possible_world.h"

namespace ptk::pw {

WorldSampler::WorldSampler(const model::Database& db) : db_(&db) {
  assert(db.finalized());
  cumulative_.reserve(db.num_objects());
  for (const auto& obj : db.objects()) {
    std::vector<double> cum;
    cum.reserve(obj.num_instances());
    double acc = 0.0;
    for (const auto& inst : obj.instances()) {
      acc += inst.prob;
      cum.push_back(acc);
    }
    cum.back() = 1.0;  // guard against rounding in the final bucket
    cumulative_.push_back(std::move(cum));
  }
}

void WorldSampler::SampleWorld(util::Rng& rng,
                               std::vector<model::InstanceId>* iids) const {
  iids->resize(db_->num_objects());
  for (model::ObjectId o = 0; o < db_->num_objects(); ++o) {
    const double u = rng.Uniform();
    const auto& cum = cumulative_[o];
    const auto it = std::upper_bound(cum.begin(), cum.end(), u);
    (*iids)[o] = static_cast<model::InstanceId>(
        std::min<size_t>(it - cum.begin(), cum.size() - 1));
  }
}

util::Status WorldSampler::Estimate(int k, OrderMode order,
                                    const ConstraintSet* constraints,
                                    int64_t samples, uint64_t seed,
                                    Result* out,
                                    const util::ParallelConfig& parallel)
    const {
  if (k < 1 || k > db_->num_objects()) {
    return util::Status::InvalidArgument("k must be in [1, num_objects]");
  }
  if (samples < 1) {
    return util::Status::InvalidArgument("samples must be positive");
  }
  // Shard count fixes the RNG streams, so the estimate depends only on
  // (seed, shards) — never on how shards are scheduled across threads.
  const int shards = static_cast<int>(
      std::min<int64_t>(parallel.Shards(), samples));
  std::vector<Result> partial(shards);
  const double weight = 1.0;  // normalized after the merge
  parallel.Pool().Run(shards, [&](int s) {
    Result& local = partial[s];
    local.distribution = TopKDistribution(order);
    // Shard s draws its contiguous share of the sample budget from its own
    // stream; stream 0 reproduces the historical single-threaded sequence.
    const int64_t begin = samples * s / shards;
    const int64_t end = samples * (s + 1) / shards;
    util::Rng rng(util::StreamSeed(seed, s));
    std::vector<model::InstanceId> iids;
    for (int64_t i = begin; i < end; ++i) {
      SampleWorld(rng, &iids);
      ++local.samples;
      if (constraints != nullptr) {
        bool ok = true;
        for (const PairwiseConstraint& c : constraints->constraints()) {
          if (db_->PositionOf({c.smaller, iids[c.smaller]}) >=
              db_->PositionOf({c.larger, iids[c.larger]})) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
      }
      ++local.accepted;
      local.distribution.Add(WorldTopK(*db_, iids, k), weight);
    }
  });

  Result result;
  result.distribution = TopKDistribution(order);
  for (const Result& local : partial) {  // fixed order: deterministic sums
    result.samples += local.samples;
    result.accepted += local.accepted;
    result.distribution.Merge(local.distribution);
  }
  if (result.accepted == 0) {
    return util::Status::InvalidArgument(
        "no sampled world satisfies the constraints");
  }
  result.distribution.Scale(1.0 / result.accepted);
  *out = std::move(result);
  return util::Status::OK();
}

}  // namespace ptk::pw
