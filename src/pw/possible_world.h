#ifndef PTK_PW_POSSIBLE_WORLD_H_
#define PTK_PW_POSSIBLE_WORLD_H_

#include <cstdint>
#include <functional>
#include <span>

#include "model/database.h"
#include "pw/constraint.h"
#include "pw/topk_distribution.h"
#include "util/status.h"

namespace ptk::pw {

/// Exhaustive possible-world engine (Section 3.1). Enumerates the full
/// Cartesian product of instances, so it is exponential in the number of
/// objects — it exists as the correctness oracle for the scalable
/// enumerator, for the paper's toy example, and as the paper's brute-force
/// (BF) baseline on small inputs.
class ExactEngine {
 public:
  /// `world_limit` caps the number of possible worlds visited; exceeding it
  /// returns ResourceExhausted instead of running for hours.
  explicit ExactEngine(const model::Database& db,
                       int64_t world_limit = int64_t{20'000'000});

  /// Invokes `fn(iids, prob)` for every possible world, where iids[o] is
  /// the instance chosen for object o.
  util::Status ForEachWorld(
      const std::function<void(std::span<const model::InstanceId>, double)>&
          fn) const;

  /// Exact distribution over top-k results, optionally conditioned on a
  /// constraint set (worlds violating it are dropped and the remainder is
  /// renormalized, Eq. 5). Returns InvalidArgument if the constraints have
  /// zero probability.
  util::Status TopKDistributionOf(int k, OrderMode order,
                                  const ConstraintSet* constraints,
                                  TopKDistribution* out) const;

  /// Number of possible worlds (product of instance counts), saturating at
  /// INT64_MAX.
  int64_t NumWorlds() const;

 private:
  const model::Database* db_;
  int64_t world_limit_;
};

/// The top-k result (rank-ordered object sequence) of one concrete world.
/// `iids[o]` selects the instance of object o; ranking uses the instance
/// total order.
ResultKey WorldTopK(const model::Database& db,
                    std::span<const model::InstanceId> iids, int k);

}  // namespace ptk::pw

#endif  // PTK_PW_POSSIBLE_WORLD_H_
