#ifndef PTK_PW_TOPK_ENUMERATOR_H_
#define PTK_PW_TOPK_ENUMERATOR_H_

#include <atomic>
#include <cstdint>

#include "model/database.h"
#include "pw/constraint.h"
#include "pw/topk_distribution.h"
#include "util/status.h"

namespace ptk::pw {

/// Tuning of the top-k enumeration.
struct EnumeratorOptions {
  /// States whose probability drops to or below this value are pruned; the
  /// pruned mass is accounted exactly in TopKDistribution::lost_mass().
  /// 0 gives the exact distribution. This implements the paper's "omit
  /// possible worlds with extremely low probabilities" device (§6.2).
  double epsilon = 0.0;

  /// Hard cap on expanded states; exceeding it returns ResourceExhausted.
  int64_t max_states = int64_t{50'000'000};

  /// Cooperative cancellation token (util::CancelSource::token()), polled
  /// once per scan position; a set flag aborts the enumeration with
  /// util::Status::Cancelled. Null means "never cancelled". The serving
  /// runtime's deadline watchdog fires this mid-enumeration.
  const std::atomic<bool>* cancel = nullptr;
};

/// Computes the distribution over top-k results across possible worlds
/// without materializing the worlds: a ranked scan over the globally
/// value-sorted instances expands *prefix states* — "the top-j result is
/// exactly this instance sequence and every other object ranks beyond scan
/// position t" — whose probabilities factor across objects (the U-Topk
/// state machine of Soliman et al. [29], generalized here to conditioning
/// on pairwise comparison outcomes via JointComponent groups).
///
/// Exact when epsilon == 0; with pruning, the missing probability mass is
/// tracked exactly because pruned states form an antichain of disjoint
/// events.
class TopKEnumerator {
 public:
  explicit TopKEnumerator(const model::Database& db);

  /// Enumerates the distribution of top-k results, conditioned on
  /// `constraints` when non-null (Eq. 5 generalized to a set of
  /// comparisons). The result's order mode is `order`; the enumeration is
  /// order-sensitive internally and collapsed for kInsensitive.
  util::Status Enumerate(int k, OrderMode order,
                         const ConstraintSet* constraints,
                         const EnumeratorOptions& options,
                         TopKDistribution* out) const;

 private:
  const model::Database* db_;
};

}  // namespace ptk::pw

#endif  // PTK_PW_TOPK_ENUMERATOR_H_
