#ifndef PTK_PW_TOPK_DISTRIBUTION_H_
#define PTK_PW_TOPK_DISTRIBUTION_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/instance.h"

namespace ptk::pw {

/// Whether two top-k results with the same objects in different rank order
/// are the same result (Definition 2's two readings; Sections 3.2 / 4.5).
enum class OrderMode {
  kInsensitive,  // results are object sets
  kSensitive,    // results are object sequences
};

/// A top-k result: the objects of the k highest-ranking instances. Stored
/// in rank order for kSensitive and sorted by id for kInsensitive.
using ResultKey = std::vector<model::ObjectId>;

struct ResultKeyHash {
  size_t operator()(const ResultKey& key) const {
    uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (model::ObjectId id : key) {
      h ^= static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

/// The probability distribution over top-k results S_k (possibly a
/// sub-distribution when the enumerator pruned low-probability states; the
/// pruned mass is tracked exactly in lost_mass).
class TopKDistribution {
 public:
  explicit TopKDistribution(OrderMode order = OrderMode::kInsensitive)
      : order_(order) {}

  OrderMode order() const { return order_; }

  /// Adds probability mass to a result. For kInsensitive mode the key is
  /// canonicalized (sorted) internally.
  void Add(ResultKey key, double prob);

  void AddLostMass(double mass) { lost_mass_ += mass; }

  size_t size() const { return entries_.size(); }
  const std::unordered_map<ResultKey, double, ResultKeyHash>& entries()
      const {
    return entries_;
  }

  /// Probability of one result (0 if absent). Key must be canonical for the
  /// order mode (sorted for kInsensitive).
  double ProbOf(const ResultKey& key) const;

  /// Total accounted mass; 1 - lost_mass up to rounding.
  double total_mass() const { return total_mass_; }
  /// Exact probability mass of pruned enumeration states.
  double lost_mass() const { return lost_mass_; }

  /// H(S_k) of Eq. 4 over the stored masses (the paper's quality metric;
  /// lower is better). With pruning this is the entropy of the accounted
  /// sub-distribution.
  double Entropy() const;

  /// Entropy after renormalizing the accounted mass to 1.
  double NormalizedEntropy() const;

  /// Collapses a kSensitive distribution to kInsensitive by merging
  /// results with the same object set. Identity for kInsensitive.
  TopKDistribution Collapsed() const;

  /// Entries sorted by descending probability (for Fig. 9 style reports).
  std::vector<std::pair<ResultKey, double>> SortedByProbDesc() const;

  /// Multiplies all masses by `factor` (used when combining conditional
  /// distributions into joint ones).
  void Scale(double factor);

  /// Adds every entry of `other` (same order mode) into this distribution,
  /// including lost mass. Used to combine per-shard partial distributions;
  /// merging shards in a fixed order keeps the summation deterministic.
  void Merge(const TopKDistribution& other);

 private:
  OrderMode order_;
  std::unordered_map<ResultKey, double, ResultKeyHash> entries_;
  double total_mass_ = 0.0;
  double lost_mass_ = 0.0;
};

}  // namespace ptk::pw

#endif  // PTK_PW_TOPK_DISTRIBUTION_H_
