#include "pw/topk_enumerator.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <vector>

#include "pw/joint_component.h"
#include "util/cancellation.h"

namespace ptk::pw {

namespace {

// A frontier state: "the top-j result consists of exactly these entries
// (with their group-relevant instance choices) and every other object
// ranks beyond the current scan position". States agreeing on this key
// have identical future behaviour, so their probabilities are merged —
// collapsing the instance-level branching of the naive U-Topk state
// machine into set-level dynamic programming.
//
// Key entries encode (oid << 16 | iid + 1) for constraint-component
// members (whose concrete instance matters for future joint factors) and
// (oid << 16) for independent objects (whose instance choice is already
// fully absorbed into the probability). kInsensitive keys are kept sorted;
// kSensitive keys keep rank order.
using StateKey = std::vector<int64_t>;

struct StateKeyHash {
  size_t operator()(const StateKey& key) const {
    uint64_t h = 1469598103934665603ull;
    for (int64_t v : key) {
      h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

using Frontier = std::unordered_map<StateKey, double, StateKeyHash>;

constexpr int kIidBits = 16;

int64_t EncodeSingleton(model::ObjectId oid) {
  return static_cast<int64_t>(oid) << kIidBits;
}

int64_t EncodeMember(model::ObjectId oid, model::InstanceId iid) {
  return (static_cast<int64_t>(oid) << kIidBits) |
         static_cast<int64_t>(iid + 1);
}

model::ObjectId DecodeOid(int64_t entry) {
  return static_cast<model::ObjectId>(entry >> kIidBits);
}

model::InstanceId DecodeIid(int64_t entry) {
  return static_cast<model::InstanceId>(entry & ((1 << kIidBits) - 1)) - 1;
}

bool ContainsOid(const StateKey& key, model::ObjectId oid) {
  for (int64_t entry : key) {
    if (DecodeOid(entry) == oid) return true;
  }
  return false;
}

}  // namespace

TopKEnumerator::TopKEnumerator(const model::Database& db) : db_(&db) {
  assert(db.finalized());
}

util::Status TopKEnumerator::Enumerate(int k, OrderMode order,
                                       const ConstraintSet* constraints,
                                       const EnumeratorOptions& options,
                                       TopKDistribution* out) const {
  const int m = db_->num_objects();
  if (k < 1 || k > m) {
    return util::Status::InvalidArgument("k must be in [1, num_objects]");
  }
  for (const auto& obj : db_->objects()) {
    if (obj.num_instances() >= (1 << kIidBits) - 1) {
      return util::Status::InvalidArgument(
          "objects with 65534+ instances are not supported");
    }
  }

  // Group the objects: each constraint component is one joint group; every
  // other object is an independent singleton.
  std::vector<JointComponent> components;
  std::vector<int> group_of(m, -1);      // oid -> component index, or -1
  std::vector<int> member_index(m, -1);  // oid -> index within component
  if (constraints != nullptr) {
    for (const auto& comp : constraints->Components()) {
      const int ci = static_cast<int>(components.size());
      components.emplace_back(*db_, comp.members, comp.constraints);
      if (components.back().prob_constraints() <= 0.0) {
        return util::Status::InvalidArgument(
            "constraint set has zero probability (contradictory "
            "comparisons)");
      }
      const auto& members = components.back().members();
      for (size_t mi = 0; mi < members.size(); ++mi) {
        group_of[members[mi]] = ci;
        member_index[members[mi]] = static_cast<int>(mi);
      }
    }
  }

  // Extracts one component's placed iids from a state key.
  std::vector<model::InstanceId> placed_scratch;
  const auto placed_of_component = [&](const StateKey& key, int ci) {
    placed_scratch.assign(components[ci].members().size(), -1);
    for (int64_t entry : key) {
      const model::ObjectId oid = DecodeOid(entry);
      if (group_of[oid] == ci) {
        placed_scratch[member_index[oid]] = DecodeIid(entry);
      }
    }
  };

  TopKDistribution dist(order);
  const auto& sorted = db_->sorted_instances();
  const model::Position num_positions =
      static_cast<model::Position>(sorted.size());

  Frontier frontier;
  frontier.emplace(StateKey{}, 1.0);
  Frontier next;
  int64_t total_states = 0;

  const auto emit = [&](StateKey key, int64_t take_entry, double p) {
    key.push_back(take_entry);
    ResultKey result;
    result.reserve(key.size());
    for (int64_t entry : key) result.push_back(DecodeOid(entry));
    // kSensitive keys are in rank order because singleton takes append in
    // scan order; for kInsensitive Add() canonicalizes.
    dist.Add(std::move(result), p);
  };

  // Component factors depend only on (placed signature, position), and few
  // distinct signatures appear across a layer's states, so factor triples
  // are memoized per position.
  struct FactorTriple {
    double old_f, skip_f, take_f;
  };
  std::unordered_map<StateKey, FactorTriple, StateKeyHash> factor_memo;

  for (model::Position pos = 0; pos < num_positions && !frontier.empty();
       ++pos) {
    if (util::CancelRequested(options.cancel)) {
      return util::Status::Cancelled("top-k enumeration cancelled");
    }
    const model::Instance& inst = sorted[pos];
    const int ci = group_of[inst.oid];
    if (ci >= 0) factor_memo.clear();

    next.clear();
    next.reserve(frontier.size() * 2);
    const auto add = [&](StateKey key, double p) {
      auto [it, inserted] = next.try_emplace(std::move(key), p);
      if (!inserted) it->second += p;
    };

    for (auto& [key, p] : frontier) {
      if (ContainsOid(key, inst.oid)) {
        // The scanned instance belongs to an already-placed object: its
        // mutual exclusivity is already absorbed; nothing changes.
        add(key, p);
        continue;
      }
      const int len = static_cast<int>(key.size());
      double old_f, skip_f, take_f;
      int64_t take_entry;
      if (ci < 0) {
        old_f = db_->MassBeyond(inst.oid, pos - 1);
        skip_f = db_->MassBeyond(inst.oid, pos);
        take_f = inst.prob;
        take_entry = EncodeSingleton(inst.oid);
      } else {
        placed_of_component(key, ci);
        StateKey signature;  // this component's placed entries
        signature.reserve(placed_scratch.size());
        for (size_t mi = 0; mi < placed_scratch.size(); ++mi) {
          signature.push_back(EncodeMember(components[ci].members()[mi],
                                           placed_scratch[mi]));
        }
        const auto memo = factor_memo.find(signature);
        if (memo != factor_memo.end()) {
          old_f = memo->second.old_f;
          skip_f = memo->second.skip_f;
          take_f = memo->second.take_f;
        } else {
          old_f = components[ci].Factor(placed_scratch, pos - 1);
          skip_f = components[ci].Factor(placed_scratch, pos);
          placed_scratch[member_index[inst.oid]] = inst.iid;
          take_f = components[ci].Factor(placed_scratch, pos);
          factor_memo.emplace(std::move(signature),
                              FactorTriple{old_f, skip_f, take_f});
        }
        take_entry = EncodeMember(inst.oid, inst.iid);
      }
      if (old_f <= 0.0) continue;  // numerically dead state

      const double p_skip = p * (skip_f / old_f);
      if (p_skip > 0.0) add(key, p_skip);

      const double p_take = p * (take_f / old_f);
      if (p_take > 0.0) {
        if (len + 1 == k) {
          if (p_take <= options.epsilon) {
            dist.AddLostMass(p_take);
          } else {
            emit(key, take_entry, p_take);
          }
        } else {
          StateKey taken = key;
          taken.push_back(take_entry);
          if (order == OrderMode::kInsensitive) {
            // Keep sorted for merging; insertion position from the back.
            int i = static_cast<int>(taken.size()) - 1;
            while (i > 0 && taken[i - 1] > taken[i]) {
              std::swap(taken[i - 1], taken[i]);
              --i;
            }
          }
          add(std::move(taken), p_take);
        }
      }
    }

    // Prune after merging so the lost mass is exact (pruned merged states
    // are disjoint events).
    for (auto it = next.begin(); it != next.end();) {
      if (it->second <= options.epsilon) {
        dist.AddLostMass(it->second);
        it = next.erase(it);
      } else {
        ++it;
      }
    }
    frontier.swap(next);
    total_states += static_cast<int64_t>(frontier.size());
    if (total_states > options.max_states) {
      return util::Status::ResourceExhausted(
          "top-k enumeration exceeded max_states; raise epsilon or "
          "max_states");
    }
  }

  *out = std::move(dist);
  return util::Status::OK();
}

}  // namespace ptk::pw
