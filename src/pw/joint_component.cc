#include "pw/joint_component.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace ptk::pw {

JointComponent::JointComponent(const model::Database& db,
                               std::vector<model::ObjectId> members,
                               std::vector<PairwiseConstraint> constraints)
    : db_(&db),
      members_(std::move(members)),
      constraints_(std::move(constraints)) {
  assert(std::is_sorted(members_.begin(), members_.end()));
  index_constraints_.reserve(constraints_.size());
  for (const PairwiseConstraint& c : constraints_) {
    const int si = MemberIndex(c.smaller);
    const int li = MemberIndex(c.larger);
    assert(si >= 0 && li >= 0);
    index_constraints_.emplace_back(si, li);
  }
  const std::vector<model::InstanceId> none(members_.size(), -1);
  z_ = 1.0;  // Factor divides by z_, so set to 1 while computing it.
  z_ = Factor(none, -1);
}

int JointComponent::MemberIndex(model::ObjectId oid) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), oid);
  if (it == members_.end() || *it != oid) return -1;
  return static_cast<int>(it - members_.begin());
}

double JointComponent::Factor(std::span<const model::InstanceId> placed_iids,
                              model::Position pos) const {
  assert(placed_iids.size() == members_.size());
  const int n = size();
  // Joint enumeration over unplaced members' instances beyond `pos`.
  // Positions of the currently assigned instance of each member; placed
  // members are fixed, unplaced ones iterate.
  std::vector<model::Position> assigned(n, -1);
  for (int m = 0; m < n; ++m) {
    if (placed_iids[m] >= 0) {
      assigned[m] = db_->PositionOf({members_[m], placed_iids[m]});
    }
  }

  double total = 0.0;
  // Recursive product-space walk. Depth == n is a complete assignment.
  auto consistent_so_far = [&](int depth) {
    // Checks only constraints whose members are both assigned (depth-first
    // order assigns members 0..depth-1 plus all placed ones).
    for (const auto& [si, li] : index_constraints_) {
      const bool si_ready = (si < depth) || placed_iids[si] >= 0;
      const bool li_ready = (li < depth) || placed_iids[li] >= 0;
      if (si_ready && li_ready && assigned[si] >= assigned[li]) return false;
    }
    return true;
  };

  std::function<void(int, double)> walk = [&](int depth, double prob) {
    if (!consistent_so_far(depth)) return;
    if (depth == n) {
      total += prob;
      return;
    }
    const int m = depth;
    if (placed_iids[m] >= 0) {
      walk(depth + 1, prob * db_->instance({members_[m], placed_iids[m]}).prob);
      return;
    }
    const auto& insts = db_->object(members_[m]).instances();
    for (const model::Instance& inst : insts) {
      const model::Position p = db_->PositionOf({inst.oid, inst.iid});
      if (p <= pos) continue;  // unplaced members must rank beyond pos
      assigned[m] = p;
      walk(depth + 1, prob * inst.prob);
    }
    assigned[m] = -1;
  };
  walk(0, 1.0);
  return z_ > 0.0 ? total / z_ : 0.0;
}

}  // namespace ptk::pw
