#include "pw/constraint.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>

namespace ptk::pw {

void ConstraintSet::Add(model::ObjectId smaller, model::ObjectId larger) {
  const PairwiseConstraint c{smaller, larger};
  if (std::find(constraints_.begin(), constraints_.end(), c) ==
      constraints_.end()) {
    constraints_.push_back(c);
  }
}

bool ConstraintSet::Mentions(model::ObjectId oid) const {
  for (const PairwiseConstraint& c : constraints_) {
    if (c.smaller == oid || c.larger == oid) return true;
  }
  return false;
}

std::vector<PairwiseConstraint> ConstraintSet::FindChain(
    model::ObjectId from, model::ObjectId to) const {
  if (from == to) return {};
  // BFS over directed smaller→larger edges, remembering the edge that
  // discovered each node so the chain can be reconstructed.
  std::map<model::ObjectId, PairwiseConstraint> discovered_by;
  std::deque<model::ObjectId> frontier{from};
  while (!frontier.empty()) {
    const model::ObjectId node = frontier.front();
    frontier.pop_front();
    for (const PairwiseConstraint& c : constraints_) {
      if (c.smaller != node) continue;
      if (discovered_by.contains(c.larger) || c.larger == from) continue;
      discovered_by[c.larger] = c;
      if (c.larger == to) {
        std::vector<PairwiseConstraint> chain;
        for (model::ObjectId cur = to; cur != from;) {
          const PairwiseConstraint& edge = discovered_by.at(cur);
          chain.push_back(edge);
          cur = edge.smaller;
        }
        std::reverse(chain.begin(), chain.end());
        return chain;
      }
      frontier.push_back(c.larger);
    }
  }
  return {};
}

std::string ConstraintSet::FormatChain(
    const std::vector<PairwiseConstraint>& chain) {
  if (chain.empty()) return "";
  std::string out = std::to_string(chain.front().smaller);
  for (const PairwiseConstraint& c : chain) {
    out += " < ";
    out += std::to_string(c.larger);
  }
  return out;
}

std::vector<ConstraintSet::Component> ConstraintSet::Components() const {
  // Union-find over the mentioned objects.
  std::map<model::ObjectId, model::ObjectId> parent;
  std::function<model::ObjectId(model::ObjectId)> find =
      [&](model::ObjectId x) {
        auto it = parent.find(x);
        if (it == parent.end()) {
          parent[x] = x;
          return x;
        }
        if (it->second == x) return x;
        return it->second = find(it->second);
      };
  for (const PairwiseConstraint& c : constraints_) {
    parent[find(c.smaller)] = find(c.larger);
  }

  std::map<model::ObjectId, Component> by_root;
  for (const auto& [oid, _] : parent) {
    by_root[find(oid)].members.push_back(oid);
  }
  for (const PairwiseConstraint& c : constraints_) {
    by_root[find(c.smaller)].constraints.push_back(c);
  }
  std::vector<Component> out;
  out.reserve(by_root.size());
  for (auto& [_, comp] : by_root) {
    std::sort(comp.members.begin(), comp.members.end());
    out.push_back(std::move(comp));
  }
  return out;
}

}  // namespace ptk::pw
