#include "pw/topk_distribution.h"

#include <algorithm>
#include <vector>

#include "util/entropy.h"

namespace ptk::pw {

void TopKDistribution::Add(ResultKey key, double prob) {
  if (order_ == OrderMode::kInsensitive) {
    std::sort(key.begin(), key.end());
  }
  entries_[std::move(key)] += prob;
  total_mass_ += prob;
}

double TopKDistribution::ProbOf(const ResultKey& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0.0 : it->second;
}

// Both entropies gather the result-set masses into a scratch vector and
// hand the batch to the simd entropy kernel. The gather order is the map's
// iteration order — arbitrary but fixed for a given map state, and the
// kernel's striped sum is bit-identical across PTK_SIMD builds, so the
// whole computation is too.
double TopKDistribution::Entropy() const {
  std::vector<double> masses;
  masses.reserve(entries_.size());
  for (const auto& [_, p] : entries_) masses.push_back(p);
  return util::DistributionEntropySimd(masses);
}

double TopKDistribution::NormalizedEntropy() const {
  if (total_mass_ <= 0.0) return 0.0;
  std::vector<double> masses;
  masses.reserve(entries_.size());
  for (const auto& [_, p] : entries_) masses.push_back(p / total_mass_);
  return util::DistributionEntropySimd(masses);
}

TopKDistribution TopKDistribution::Collapsed() const {
  if (order_ == OrderMode::kInsensitive) return *this;
  TopKDistribution out(OrderMode::kInsensitive);
  for (const auto& [key, p] : entries_) out.Add(key, p);
  out.AddLostMass(lost_mass_);
  return out;
}

std::vector<std::pair<ResultKey, double>> TopKDistribution::SortedByProbDesc()
    const {
  std::vector<std::pair<ResultKey, double>> out(entries_.begin(),
                                                entries_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  return out;
}

void TopKDistribution::Scale(double factor) {
  for (auto& [_, p] : entries_) p *= factor;
  total_mass_ *= factor;
  lost_mass_ *= factor;
}

void TopKDistribution::Merge(const TopKDistribution& other) {
  for (const auto& [key, p] : other.entries_) {
    entries_[key] += p;
    total_mass_ += p;
  }
  lost_mass_ += other.lost_mass_;
}

}  // namespace ptk::pw
