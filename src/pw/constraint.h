#ifndef PTK_PW_CONSTRAINT_H_
#define PTK_PW_CONSTRAINT_H_

#include <string>
#include <vector>

#include "model/instance.h"

namespace ptk::pw {

/// One resolved pairwise comparison from the crowd: the `smaller` object's
/// value is below the `larger` object's value in every surviving possible
/// world (Section 3.3). Under the "smaller ranks higher" convention the
/// `smaller` object ranks above the `larger` one.
struct PairwiseConstraint {
  model::ObjectId smaller = model::kInvalidObject;
  model::ObjectId larger = model::kInvalidObject;

  friend bool operator==(const PairwiseConstraint&,
                         const PairwiseConstraint&) = default;
};

/// An accumulating set of pairwise comparison outcomes. Conditioning the
/// possible-world distribution on the set (Eq. 5 generalized) couples the
/// objects that appear in it; the coupling decomposes over the connected
/// components of the comparison graph, which this class exposes.
class ConstraintSet {
 public:
  ConstraintSet() = default;

  /// Records that object `smaller` compares below object `larger`.
  /// Duplicate additions are idempotent; adding both directions of a pair
  /// creates a contradiction, which surfaces later as a zero normalizing
  /// constant (InvalidArgument from the consumers).
  void Add(model::ObjectId smaller, model::ObjectId larger);

  bool empty() const { return constraints_.empty(); }
  int size() const { return static_cast<int>(constraints_.size()); }
  const std::vector<PairwiseConstraint>& constraints() const {
    return constraints_;
  }

  /// True if any constraint mentions `oid`.
  bool Mentions(model::ObjectId oid) const;

  struct Component {
    std::vector<model::ObjectId> members;  // sorted
    std::vector<PairwiseConstraint> constraints;
  };

  /// Connected components of the comparison graph; objects not mentioned by
  /// any constraint are omitted (they remain independent singletons).
  std::vector<Component> Components() const;

  /// Shortest directed chain `from < ... < to` implied by the set (BFS over
  /// smaller→larger edges), or empty when the set does not order `from`
  /// below `to`. The primary use is contradiction diagnostics: a new answer
  /// "s < l" conflicts with an accepted chain FindChain(l, s), and that
  /// chain names exactly the earlier answers the new one fights with.
  std::vector<PairwiseConstraint> FindChain(model::ObjectId from,
                                            model::ObjectId to) const;

  /// Renders a chain as "3 < 7 < 5" for error messages; empty chains
  /// render as "".
  static std::string FormatChain(
      const std::vector<PairwiseConstraint>& chain);

 private:
  std::vector<PairwiseConstraint> constraints_;
};

}  // namespace ptk::pw

#endif  // PTK_PW_CONSTRAINT_H_
