#ifndef PTK_PW_JOINT_COMPONENT_H_
#define PTK_PW_JOINT_COMPONENT_H_

#include <span>
#include <vector>

#include "model/database.h"
#include "pw/constraint.h"

namespace ptk::pw {

/// The joint distribution of one connected component of the comparison
/// graph: a small set of objects coupled by pairwise order constraints,
/// conditioned on those constraints holding. The top-k enumerator treats a
/// component as a single group whose "survival" factor it queries as the
/// ranked scan advances.
///
/// Factors are computed by enumerating the component's joint instance
/// assignments — exact, and cheap because crowd-constrained components stay
/// small (a single crowdsourced pair gives a component of two objects).
class JointComponent {
 public:
  /// `members` must be sorted and must contain every object mentioned by
  /// `constraints`.
  JointComponent(const model::Database& db,
                 std::vector<model::ObjectId> members,
                 std::vector<PairwiseConstraint> constraints);

  const std::vector<model::ObjectId>& members() const { return members_; }
  int size() const { return static_cast<int>(members_.size()); }

  /// Pr(all constraints hold) — the normalizing constant Z of Eq. 5.
  /// Zero means the constraint set is contradictory.
  double prob_constraints() const { return z_; }

  /// Index of `oid` within members(), or -1.
  int MemberIndex(model::ObjectId oid) const;

  /// Conditional factor used by the enumerator:
  ///   Pr(placed members take their given instances
  ///      AND every unplaced member ranks strictly beyond global position
  ///          `pos`
  ///      AND all constraints hold) / Z.
  /// `placed_iids` is parallel to members(); -1 marks an unplaced member.
  /// `pos == -1` means "no position restriction yet".
  double Factor(std::span<const model::InstanceId> placed_iids,
                model::Position pos) const;

 private:
  const model::Database* db_;
  std::vector<model::ObjectId> members_;
  std::vector<PairwiseConstraint> constraints_;
  // Constraints as member-index pairs (smaller_idx, larger_idx).
  std::vector<std::pair<int, int>> index_constraints_;
  double z_ = 0.0;
};

}  // namespace ptk::pw

#endif  // PTK_PW_JOINT_COMPONENT_H_
