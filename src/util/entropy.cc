#include "util/entropy.h"

#include <algorithm>

#include "simd/kernels.h"

namespace ptk::util {

double DistributionEntropy(std::span<const double> masses) {
  double total = 0.0;
  for (double p : masses) total += EntropyTerm(p);
  return total;
}

double DistributionEntropySimd(std::span<const double> masses) {
  return simd::Ops().entropy_sum(masses.data(),
                                 static_cast<int>(masses.size()));
}

double BinaryEntropyIntervalMax(double lo, double hi) {
  if (lo > hi) std::swap(lo, hi);
  if (lo <= 0.5 && 0.5 <= hi) return BinaryEntropy(0.5);
  // Both endpoints on the same side of 0.5: take the one closer to 0.5.
  const double nearer = (hi < 0.5) ? hi : lo;
  return BinaryEntropy(nearer);
}

double BinaryEntropyIntervalMin(double lo, double hi) {
  if (lo > hi) std::swap(lo, hi);
  const double farther =
      (std::abs(lo - 0.5) >= std::abs(hi - 0.5)) ? lo : hi;
  return BinaryEntropy(farther);
}

}  // namespace ptk::util
