#include "util/epoch.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace ptk::util {

EpochManager::~EpochManager() { DrainAll(); }

void EpochManager::ReadGuard::Release() {
  if (manager_ == nullptr) return;
  Slot& slot = manager_->slots_[slot_];
  slot.epoch.store(UINT64_MAX, std::memory_order_seq_cst);
  slot.used.store(false, std::memory_order_release);
  manager_ = nullptr;
  slot_ = -1;
}

EpochManager::ReadGuard EpochManager::Enter() {
  for (;;) {
    for (int i = 0; i < kSlots; ++i) {
      Slot& slot = slots_[i];
      bool expected = false;
      if (!slot.used.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
        continue;
      }
      // Publish the pinned epoch, then re-check the global counter: if a
      // writer advanced it between our load and our store, the writer may
      // not have seen our pin, so re-pin at the newer epoch. The loop
      // terminates because retires (the only advancer) are finite.
      uint64_t e = global_.load(std::memory_order_seq_cst);
      for (;;) {
        slot.epoch.store(e, std::memory_order_seq_cst);
        const uint64_t now = global_.load(std::memory_order_seq_cst);
        if (now == e) break;
        e = now;
      }
      return ReadGuard(this, i);
    }
    std::this_thread::yield();  // all slots busy; rare by construction
  }
}

void EpochManager::Retire(std::function<void()> deleter) {
  // fetch_add makes the stamp unique and orders it against reader re-check
  // loops: any reader that pins an epoch <= stamp entered before the
  // object was unpublished and may still hold the old pointer.
  const uint64_t stamp = global_.fetch_add(1, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(limbo_mu_);
  limbo_.push_back(Limbo{stamp, std::move(deleter)});
  ++retired_;
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min_epoch = UINT64_MAX;
  for (int i = 0; i < kSlots; ++i) {
    min_epoch = std::min(
        min_epoch, slots_[i].epoch.load(std::memory_order_seq_cst));
  }
  return min_epoch;
}

int64_t EpochManager::Reclaim() {
  std::vector<Limbo> ready;
  {
    std::lock_guard<std::mutex> lock(limbo_mu_);
    if (limbo_.empty()) return 0;
    const uint64_t horizon = MinActiveEpoch();
    auto keep = limbo_.begin();
    for (auto it = limbo_.begin(); it != limbo_.end(); ++it) {
      if (it->stamp < horizon) {
        ready.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    limbo_.erase(keep, limbo_.end());
    reclaimed_ += static_cast<int64_t>(ready.size());
  }
  // Run deleters outside the lock; they may be arbitrarily heavy.
  for (Limbo& entry : ready) entry.deleter();
  return static_cast<int64_t>(ready.size());
}

void EpochManager::DrainAll() {
  for (;;) {
    bool any_active = false;
    for (int i = 0; i < kSlots; ++i) {
      if (slots_[i].used.load(std::memory_order_acquire)) {
        any_active = true;
        break;
      }
    }
    if (!any_active) break;
    std::this_thread::yield();
  }
  std::vector<Limbo> all;
  {
    std::lock_guard<std::mutex> lock(limbo_mu_);
    all.swap(limbo_);
    reclaimed_ += static_cast<int64_t>(all.size());
  }
  for (Limbo& entry : all) entry.deleter();
}

EpochManager::Stats EpochManager::stats() const {
  std::lock_guard<std::mutex> lock(limbo_mu_);
  Stats s;
  s.retired = retired_;
  s.reclaimed = reclaimed_;
  s.pending = static_cast<int64_t>(limbo_.size());
  return s;
}

}  // namespace ptk::util
