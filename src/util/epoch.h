#ifndef PTK_UTIL_EPOCH_H_
#define PTK_UTIL_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace ptk::util {

/// Epoch-based memory reclamation for read-mostly shared structures.
///
/// Readers wrap each traversal in a ReadGuard: entering pins the current
/// global epoch in a per-reader slot, leaving releases the slot. Writers
/// retire superseded objects with a stamp drawn from the global epoch
/// counter (which advances on every retire); a retired object is freed only
/// once its stamp is strictly below the minimum epoch pinned by any active
/// reader — i.e. once every traversal that could still have observed the
/// old pointer has finished.
///
/// The protocol is deliberately coarse (one global counter, seq_cst
/// operations, a mutexed limbo list) because retires here are rare —
/// one per superseded PB-tree node copy, a handful per crowdsourcing
/// answer — while reads are pin-once-per-selection, not per-node. The
/// cost that matters is the reader Enter/Leave pair, which is two atomic
/// stores and a bounded re-check loop, with no locks.
class EpochManager {
 public:
  /// Upper bound on simultaneously active readers. Enter() falls back to
  /// spinning for a slot if all are taken; with pin-per-selection usage
  /// and bounded server concurrency this never triggers in practice.
  static constexpr int kSlots = 256;

  EpochManager() = default;
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII pin on the current epoch. Movable, not copyable.
  class ReadGuard {
   public:
    ReadGuard() = default;
    ReadGuard(ReadGuard&& other) noexcept
        : manager_(other.manager_), slot_(other.slot_) {
      other.manager_ = nullptr;
      other.slot_ = -1;
    }
    ReadGuard& operator=(ReadGuard&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = other.manager_;
        slot_ = other.slot_;
        other.manager_ = nullptr;
        other.slot_ = -1;
      }
      return *this;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() { Release(); }

    bool active() const { return manager_ != nullptr; }

    /// Unpins early (idempotent); the destructor is the usual path.
    void Release();

   private:
    friend class EpochManager;
    ReadGuard(EpochManager* manager, int slot)
        : manager_(manager), slot_(slot) {}

    EpochManager* manager_ = nullptr;
    int slot_ = -1;
  };

  /// Pins the current epoch until the returned guard is destroyed. The
  /// caller must hold the guard across every dereference of an epoch-
  /// protected pointer loaded after Enter().
  ReadGuard Enter();

  /// Hands `deleter` to the limbo list stamped with the epoch at which the
  /// object became unreachable from the published structure. Safe to call
  /// from any thread. The deleter runs during some later Reclaim() or at
  /// manager destruction.
  void Retire(std::function<void()> deleter);

  /// Frees every limbo entry whose stamp precedes all active readers.
  /// Returns the number of entries freed.
  int64_t Reclaim();

  /// Blocks until no reader is active, then frees the entire limbo list.
  /// Used at shutdown (and by the ASan leak gate) to prove nothing stays
  /// reachable once all sessions are closed.
  void DrainAll();

  struct Stats {
    int64_t retired = 0;    // total objects handed to Retire()
    int64_t reclaimed = 0;  // total freed so far
    int64_t pending = 0;    // currently in limbo
  };
  Stats stats() const;

  /// Lowest epoch pinned by any active reader, or UINT64_MAX if none.
  uint64_t MinActiveEpoch() const;

 private:
  struct Slot {
    std::atomic<uint64_t> epoch{UINT64_MAX};  // UINT64_MAX = idle
    std::atomic<bool> used{false};
    // Pad to a cache line so concurrent readers don't false-share.
    char padding[64 - 2 * sizeof(std::atomic<uint64_t>)];
  };
  struct Limbo {
    uint64_t stamp;
    std::function<void()> deleter;
  };

  std::atomic<uint64_t> global_{0};
  std::vector<Slot> slots_{kSlots};

  mutable std::mutex limbo_mu_;
  std::vector<Limbo> limbo_;
  int64_t retired_ = 0;
  int64_t reclaimed_ = 0;
};

}  // namespace ptk::util

#endif  // PTK_UTIL_EPOCH_H_
