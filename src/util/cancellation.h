#ifndef PTK_UTIL_CANCELLATION_H_
#define PTK_UTIL_CANCELLATION_H_

#include <atomic>

namespace ptk::util {

/// Cooperative cancellation for long-running library calls (selection
/// sweeps, top-k enumeration). A CancelSource owns one flag; callers hand
/// its token() — a plain `const std::atomic<bool>*` — to the options
/// structs the hot loops read (pw::EnumeratorOptions::cancel,
/// core::SelectorOptions::cancel). The loops poll the flag at natural
/// batch boundaries (once per enumeration layer, once per candidate batch,
/// every few hundred pairs of an EI sweep) and return
/// util::Status::Cancelled when it is set; no work started before the flag
/// flip is undone, and every already-computed result is simply discarded.
///
/// The source outlives every token handed out; a null token means "never
/// cancelled" and costs one pointer test per poll. Setting the flag is
/// safe from any thread (the serving runtime's deadline watchdog fires it
/// from outside the worker executing the request); Reset() re-arms a
/// source between requests and must not race with a loop still polling
/// the token — the serving scheduler guarantees that by resetting only
/// between requests of the same (serialized) session.
class CancelSource {
 public:
  CancelSource() = default;
  CancelSource(const CancelSource&) = delete;
  CancelSource& operator=(const CancelSource&) = delete;

  /// Requests cancellation. Idempotent; safe from any thread.
  void RequestCancel() { flag_.store(true, std::memory_order_relaxed); }

  /// Re-arms the source for the next request.
  void Reset() { flag_.store(false, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return flag_.load(std::memory_order_relaxed);
  }

  /// The pollable token, valid for this source's lifetime.
  const std::atomic<bool>* token() const { return &flag_; }

 private:
  std::atomic<bool> flag_{false};
};

/// Poll helper for the hot loops: false for the null ("never cancelled")
/// token.
inline bool CancelRequested(const std::atomic<bool>* token) {
  return token != nullptr && token->load(std::memory_order_relaxed);
}

}  // namespace ptk::util

#endif  // PTK_UTIL_CANCELLATION_H_
