#ifndef PTK_UTIL_ENTROPY_H_
#define PTK_UTIL_ENTROPY_H_

#include <cmath>
#include <span>

namespace ptk::util {

/// The entropy kernel h(x) = -x ln x, with h(0) defined as 0 (the paper's
/// Eq. 4 convention). Natural logarithm throughout, as in the paper.
/// Negative inputs (which can arise from floating-point cancellation in
/// bound arithmetic) are clamped to 0.
///
/// Defined inline (and side-effect-free for the optimizer) so the EI and
/// Δ-bound sweeps can fold it into their inner loops; the guarded x > 0
/// path never sets errno.
[[gnu::const]] inline double EntropyTerm(double x) {
  if (x <= 0.0) return 0.0;
  return -x * std::log(x);
}

/// The binary-event entropy H(x) = h(x) + h(1 - x) used for H(A(P_1))
/// (Eq. 12). Symmetric around 0.5, maximized at H(0.5) = ln 2, and
/// monotonically increasing on [0, 0.5].
[[gnu::const]] inline double BinaryEntropy(double x) {
  return EntropyTerm(x) + EntropyTerm(1.0 - x);
}

/// Entropy of a (sub-)distribution: sum of h(p) over the given masses.
/// Masses need not sum to 1 (the enumerator may prune low-probability
/// worlds; see pw::TopKDistribution::lost_mass()). Sequential left-to-right
/// summation with the libm log — the exact reference.
double DistributionEntropy(std::span<const double> masses);

/// Batched form over the simd kernel layer: striped 4-lane summation and a
/// polynomial log (each h(p) term within 4 ULP of correctly rounded; see
/// simd/kernels.h for the contract). Bit-identical across PTK_SIMD builds
/// and dispatch levels, but NOT bit-identical to DistributionEntropy —
/// callers choose per call site whether they need the libm reference or
/// the throughput.
double DistributionEntropySimd(std::span<const double> masses);

/// Maximum of H(x) = h(x) + h(1-x) over the closed interval [lo, hi].
/// Interval-correct: if the interval straddles 0.5 the maximum is
/// H(0.5) = ln 2. Used for the admissible upper bound of Eq. 16.
double BinaryEntropyIntervalMax(double lo, double hi);

/// Minimum of H(x) over [lo, hi]: attained at the endpoint farther from
/// 0.5 (Eq. 15).
double BinaryEntropyIntervalMin(double lo, double hi);

}  // namespace ptk::util

#endif  // PTK_UTIL_ENTROPY_H_
