#ifndef PTK_UTIL_ENTROPY_H_
#define PTK_UTIL_ENTROPY_H_

#include <cmath>
#include <span>

namespace ptk::util {

/// The entropy kernel h(x) = -x ln x, with h(0) defined as 0 (the paper's
/// Eq. 4 convention). Natural logarithm throughout, as in the paper.
/// Negative inputs (which can arise from floating-point cancellation in
/// bound arithmetic) are clamped to 0.
double EntropyTerm(double x);

/// The binary-event entropy H(x) = h(x) + h(1 - x) used for H(A(P_1))
/// (Eq. 12). Symmetric around 0.5, maximized at H(0.5) = ln 2, and
/// monotonically increasing on [0, 0.5].
double BinaryEntropy(double x);

/// Entropy of a (sub-)distribution: sum of h(p) over the given masses.
/// Masses need not sum to 1 (the enumerator may prune low-probability
/// worlds; see pw::TopKDistribution::lost_mass()).
double DistributionEntropy(std::span<const double> masses);

/// Maximum of H(x) = h(x) + h(1-x) over the closed interval [lo, hi].
/// Interval-correct: if the interval straddles 0.5 the maximum is
/// H(0.5) = ln 2. Used for the admissible upper bound of Eq. 16.
double BinaryEntropyIntervalMax(double lo, double hi);

/// Minimum of H(x) over [lo, hi]: attained at the endpoint farther from
/// 0.5 (Eq. 15).
double BinaryEntropyIntervalMin(double lo, double hi);

}  // namespace ptk::util

#endif  // PTK_UTIL_ENTROPY_H_
