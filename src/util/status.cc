#include "util/status.h"

namespace ptk::util {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kCancelled:
      return "Cancelled";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

Status Status::WithContext(std::string context) const {
  if (ok()) return *this;
  if (message_.empty()) return Status(code_, std::move(context));
  context += ": ";
  context += message_;
  return Status(code_, std::move(context));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ptk::util
