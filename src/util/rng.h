#ifndef PTK_UTIL_RNG_H_
#define PTK_UTIL_RNG_H_

#include <cstdint>
#include <random>

namespace ptk::util {

/// Deterministic, seedable random source used by the dataset generators,
/// the simulated crowd, and the random selection baselines. All experiment
/// harnesses pass explicit seeds so every figure is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * Uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal deviate scaled to N(mean, stddev^2).
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// SplitMix64 finalizer: the standard 64-bit mixer used to derive
/// well-separated seeds from nearby inputs.
inline uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Seed of the `stream`-th independent RNG stream derived from `seed`.
/// Stream 0 is the base seed itself, so single-stream consumers are
/// bit-compatible with code that seeded Rng(seed) directly.
inline uint64_t StreamSeed(uint64_t seed, int stream) {
  return stream == 0 ? seed : MixBits(seed + static_cast<uint64_t>(stream));
}

}  // namespace ptk::util

#endif  // PTK_UTIL_RNG_H_
