#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ptk::util {

namespace {

struct PoolMetrics {
  obs::Counter* tasks;
  obs::Counter* batches;
  obs::Gauge* queue_depth;
  obs::Histogram* shard_seconds;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = {
        obs::GetCounter("ptk_pool_tasks_total",
                        "Tasks executed by the thread pool"),
        obs::GetCounter("ptk_pool_batches_total",
                        "Run/ParallelFor batches submitted"),
        obs::GetGauge("ptk_pool_queue_depth",
                      "Tasks of the in-flight batch not yet claimed"),
        obs::GetHistogram(
            "ptk_pool_shard_seconds",
            "Per-shard ParallelFor body time; the spread across one batch "
            "is the shard imbalance"),
    };
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

// Claims task indices in [base, limit) from the shared monotonic counter.
// The counter is never reset, and claims are CAS-bounded by the limit, so a
// worker waking late for an already-finished batch observes counter >=
// its snapshot's limit and exits without touching the new batch's range
// (or the possibly-dangling fn).
bool ThreadPool::ClaimTask(int64_t limit, int64_t* index) {
  int64_t c = next_task_.load(std::memory_order_relaxed);
  while (c < limit) {
    if (next_task_.compare_exchange_weak(c, c + 1,
                                         std::memory_order_relaxed)) {
      *index = c;
      PoolMetrics::Get().queue_depth->Add(-1);
      return true;
    }
  }
  return false;
}

void ThreadPool::Run(int num_tasks, const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.batches->Add();
  metrics.tasks->Add(num_tasks);
  if (workers_.empty() || num_tasks == 1) {
    for (int i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  // One batch at a time; concurrent Run callers queue up here.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  int64_t base = 0;
  int64_t limit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    done_count_ = 0;
    base = next_task_.load(std::memory_order_relaxed);
    limit = base + num_tasks;
    limit_ = limit;
    // Set before the workers wake (they take mu_ to observe the new
    // generation), so claims can only ever decrement from here.
    metrics.queue_depth->Set(num_tasks);
    ++generation_;
  }
  work_cv_.notify_all();
  // The calling thread claims tasks alongside the workers.
  int64_t claimed = 0;
  while (ClaimTask(limit, &claimed)) {
    fn(static_cast<int>(claimed - base));
    std::lock_guard<std::mutex> lock(mu_);
    ++done_count_;
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return done_count_ == num_tasks_; });
  fn_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const std::function<void(int)>* fn = fn_;
    const int num_tasks = num_tasks_;
    const int64_t limit = limit_;
    const int64_t base = limit - num_tasks;
    lock.unlock();
    int64_t claimed = 0;
    while (ClaimTask(limit, &claimed)) {
      (*fn)(static_cast<int>(claimed - base));
      std::lock_guard<std::mutex> task_lock(mu_);
      if (++done_count_ == num_tasks) done_cv_.notify_all();
    }
    lock.lock();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(ResolveThreads(0));
  return *pool;
}

int ThreadPool::ResolveThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("PTK_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ParallelFor(const ParallelConfig& config, int64_t n,
                 const std::function<void(int, int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int shards =
      static_cast<int>(std::min<int64_t>(config.Shards(), n));
  if (shards <= 1) {
    fn(0, 0, n);
    return;
  }
  obs::Histogram* const shard_seconds = PoolMetrics::Get().shard_seconds;
  config.Pool().Run(shards, [&](int s) {
    obs::ScopedTimer shard_timer(shard_seconds);
    const int64_t begin = n * s / shards;
    const int64_t end = n * (s + 1) / shards;
    if (begin < end) fn(s, begin, end);
  });
}

}  // namespace ptk::util
