#ifndef PTK_UTIL_STATUS_H_
#define PTK_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace ptk::util {

/// Lightweight Status in the RocksDB style: library-boundary APIs that can
/// fail on user input (validation, file I/O, resource limits) return Status
/// instead of throwing. Internal algorithmic invariants use assertions.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kResourceExhausted,
    kIoError,
    kInternal,
    kFailedPrecondition,
    kCancelled,
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns the same status with `context` prefixed onto the message
  /// ("context: message"), preserving the code. OK statuses pass through
  /// unchanged. Boundary layers use this to grow a breadcrumb trail as an
  /// error propagates outward, e.g.
  ///   "clean: answers.csv:7: trailing characters after third field".
  Status WithContext(std::string context) const;

  /// "OK" or "<code>: <message>" for logs and test failure output.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// The code's stable wire/name form ("OK", "NotFound", ...), as used by
/// ToString() and the serving protocol's error responses.
const char* StatusCodeName(Status::Code code);

}  // namespace ptk::util

#endif  // PTK_UTIL_STATUS_H_
