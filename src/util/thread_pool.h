#ifndef PTK_UTIL_THREAD_POOL_H_
#define PTK_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ptk::util {

/// A fixed-size pool of worker threads for the library's embarrassingly
/// parallel hot paths (exact-EI sweeps, Δ-bound batches, possible-world
/// sampling). The calling thread participates in every batch, so a pool of
/// size N spawns N-1 workers and a pool of size 1 spawns none and runs
/// everything inline.
///
/// Determinism contract: callers split their work into a *shard* count that
/// depends only on their configuration (never on how many threads happen to
/// execute), compute each shard independently, and merge shard results in
/// shard order on the calling thread. Under that discipline, results are
/// identical no matter how shards are scheduled across threads.
class ThreadPool {
 public:
  /// Creates a pool that runs batches on `num_threads` threads total
  /// (clamped to >= 1); num_threads - 1 workers are spawned.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(0) ... fn(num_tasks - 1), each exactly once, across the pool
  /// (including the calling thread) and returns when all have completed.
  /// fn must not call Run on the same pool (no nesting).
  void Run(int num_tasks, const std::function<void(int)>& fn);

  /// Process-wide pool sized by ResolveThreads(0). Created on first use.
  static ThreadPool& Global();

  /// Resolves a requested thread count: `requested` when > 0, otherwise the
  /// PTK_THREADS environment variable when set to a positive integer,
  /// otherwise std::thread::hardware_concurrency().
  static int ResolveThreads(int requested);

 private:
  void WorkerLoop();
  bool ClaimTask(int64_t limit, int64_t* index);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex run_mu_;  // serializes concurrent Run callers
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current batch, guarded by mu_ except for the task-claim counter, which
  // is monotonic across batches (see ClaimTask).
  const std::function<void(int)>* fn_ = nullptr;
  int num_tasks_ = 0;
  int done_count_ = 0;
  int64_t limit_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::atomic<int64_t> next_task_{0};
};

/// How a parallel call splits and executes its work.
struct ParallelConfig {
  /// Shard count: > 0 uses exactly that many shards; 0 resolves through
  /// ThreadPool::ResolveThreads (PTK_THREADS, then hardware concurrency).
  /// Shard count — not physical thread count — is what sharded-RNG results
  /// (WorldSampler) depend on.
  int threads = 0;

  /// Pool that executes the shards; null uses ThreadPool::Global().
  ThreadPool* pool = nullptr;

  int Shards() const { return ThreadPool::ResolveThreads(threads); }
  ThreadPool& Pool() const {
    return pool != nullptr ? *pool : ThreadPool::Global();
  }
};

/// Chunked parallel-for: splits [0, n) into at most config.Shards()
/// contiguous ranges and invokes fn(shard, begin, end) for each. Runs
/// inline (serially, in shard order) when only one shard results or the
/// pool is single-threaded; the split itself never depends on the pool, so
/// any per-shard state a caller derives (RNG streams, scratch evaluators)
/// is reproducible.
void ParallelFor(const ParallelConfig& config, int64_t n,
                 const std::function<void(int, int64_t, int64_t)>& fn);

}  // namespace ptk::util

#endif  // PTK_UTIL_THREAD_POOL_H_
