#ifndef PTK_UTIL_STATUSOR_H_
#define PTK_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace ptk::util {

/// Status-or-value, in the Abseil style but minimal: a StatusOr<T> holds
/// either a non-OK Status or a T. Library-boundary functions that used to
/// return `Status` plus an out-parameter (loaders, engine accessors) now
/// return StatusOr so call sites read
///
///   auto db = data::LoadCsv(path);
///   if (!db.ok()) return db.status();
///   Use(*db);
///
/// Constructing from an OK status without a value is a caller bug; it is
/// stored as an Internal error rather than undefined behaviour.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a (non-OK) status — enables `return status;`.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK without a value");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr: OK status carried no value");
    }
  }

  /// Implicit from a value — enables `return db;`.
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }

  /// OK when a value is held, the stored error otherwise.
  const Status& status() const { return status_; }

  /// Value access; undefined unless ok() (asserted in debug builds).
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// The value, or `fallback` when this holds an error.
  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  Status status_;  // OK iff value_ holds
  std::optional<T> value_;
};

}  // namespace ptk::util

#endif  // PTK_UTIL_STATUSOR_H_
