#include "util/rng.h"

// Rng is header-only; this translation unit exists so the build system has a
// stable object for the target and future out-of-line helpers.
