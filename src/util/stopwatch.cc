#include "util/stopwatch.h"

// Stopwatch is header-only; see status.cc for the rationale of this file.
