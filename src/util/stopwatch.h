#ifndef PTK_UTIL_STOPWATCH_H_
#define PTK_UTIL_STOPWATCH_H_

#include <chrono>

namespace ptk::util {

/// Wall-clock stopwatch used by the efficiency experiments (Figs. 12-13).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ptk::util

#endif  // PTK_UTIL_STOPWATCH_H_
