#include "obs/export.h"

#include <cstdio>
#include <cstdlib>

namespace ptk::obs {

namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string FmtInt(int64_t v) { return std::to_string(v); }

/// Label-in-name convention: a metric registered as
/// `family{label="x"}` exposes the Prometheus family `family` with that
/// label set. HELP/TYPE must be emitted once per family, keyed on the
/// name with its `{...}` suffix stripped.
std::string_view FamilyOf(std::string_view name) {
  const size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    out += "counter " + c.name + " " + FmtInt(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    out += "gauge " + g.name + " " + FmtInt(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out += "histogram " + h.name + " count=" + FmtInt(h.count) +
           " sum=" + FmtDouble(h.sum);
    for (size_t i = 0; i < h.counts.size(); ++i) {
      const std::string le =
          i < h.bounds.size() ? FmtDouble(h.bounds[i]) : "inf";
      out += " le_" + le + "=" + FmtInt(h.counts[i]);
    }
    out += "\n";
  }
  return out;
}

std::string FormatJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    out += i ? "," : "";
    out += "\n    \"" + JsonEscape(c.name) + "\": " + FmtInt(c.value);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    out += i ? "," : "";
    out += "\n    \"" + JsonEscape(g.name) + "\": " + FmtInt(g.value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    out += i ? "," : "";
    out += "\n    \"" + JsonEscape(h.name) + "\": {\"count\": " +
           FmtInt(h.count) + ", \"sum\": " + FmtDouble(h.sum) +
           ", \"buckets\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      const std::string le =
          b < h.bounds.size() ? FmtDouble(h.bounds[b]) : "\"+Inf\"";
      out += b ? ", " : "";
      out += "{\"le\": " + le + ", \"count\": " + FmtInt(h.counts[b]) + "}";
    }
    out += "]}";
  }
  out += snapshot.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string FormatPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  // Snapshots are name-sorted, so label sets of one family are adjacent:
  // emit HELP/TYPE once per run of the same family.
  std::string last_family;
  for (const auto& c : snapshot.counters) {
    const std::string family(FamilyOf(c.name));
    if (family != last_family) {
      out += "# HELP " + family + " " + c.help + "\n";
      out += "# TYPE " + family + " counter\n";
      last_family = family;
    }
    out += c.name + " " + FmtInt(c.value) + "\n";
  }
  last_family.clear();
  for (const auto& g : snapshot.gauges) {
    const std::string family(FamilyOf(g.name));
    if (family != last_family) {
      out += "# HELP " + family + " " + g.help + "\n";
      out += "# TYPE " + family + " gauge\n";
      last_family = family;
    }
    out += g.name + " " + FmtInt(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out += "# HELP " + h.name + " " + h.help + "\n";
    out += "# TYPE " + h.name + " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.bounds.size() ? FmtDouble(h.bounds[i]) : "+Inf";
      out += h.name + "_bucket{le=\"" + le + "\"} " + FmtInt(cumulative) +
             "\n";
    }
    out += h.name + "_sum " + FmtDouble(h.sum) + "\n";
    out += h.name + "_count " + FmtInt(h.count) + "\n";
  }
  return out;
}

std::string FormatTrace(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& e : events) {
    out.append(static_cast<size_t>(e.depth) * 2, ' ');
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %.3fms\n", e.duration_seconds * 1e3);
    out += e.name + buf;
  }
  return out;
}

BenchJsonWriter::BenchJsonWriter() {
  const char* path = std::getenv("PTK_BENCH_JSON");
  if (path != nullptr && path[0] != '\0') path_ = path;
}

BenchJsonWriter::BenchJsonWriter(std::string path)
    : path_(std::move(path)) {}

BenchJsonWriter::~BenchJsonWriter() { Flush(); }

void BenchJsonWriter::Record(const std::string& name, double wall_seconds,
                             int threads, int m, int k, double scale) {
  if (!enabled()) return;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  {\"name\": \"%s\", \"wall_s\": %.9g, \"threads\": %d, "
                "\"m\": %d, \"k\": %d, \"scale\": %g}",
                JsonEscape(name).c_str(), wall_seconds, threads, m, k,
                scale);
  records_.push_back(buf);
}

void BenchJsonWriter::Flush() {
  if (!enabled() || records_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "PTK_BENCH_JSON: cannot open %s\n", path_.c_str());
    records_.clear();
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records_.size(); ++i) {
    std::fprintf(f, "%s%s\n", records_[i].c_str(),
                 i + 1 < records_.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  records_.clear();
}

}  // namespace ptk::obs
