#ifndef PTK_OBS_EXPORT_H_
#define PTK_OBS_EXPORT_H_

// Exporters for MetricsSnapshot and TraceEvent streams. Three formats,
// all deterministic (metrics sorted by name, doubles via %.9g) so they
// can be golden-tested:
//
//   FormatText        "name value" lines for humans / CLI output;
//   FormatJson        one JSON object {"counters": {...}, "gauges": {...},
//                     "histograms": {...}};
//   FormatPrometheus  the Prometheus text exposition format (# HELP /
//                     # TYPE headers, cumulative _bucket{le="..."} series).
//
// BenchJsonWriter is the benchmark-record sink that used to live in
// bench/harness.h: Record() calls buffer {name, wall_s, threads, m, k,
// scale} rows and Flush()/destruction writes them as a JSON array to the
// PTK_BENCH_JSON path. bench/harness.h now wraps this class instead of
// owning a private implementation, so bench output and `ptk_cli
// --metrics=json` speak JSON through one module.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ptk::obs {

/// "counter name value", "gauge name value", and per-histogram summary
/// lines ("histogram name count=N sum=S le_0.001=4 ..."). Ends with '\n'
/// when non-empty.
std::string FormatText(const MetricsSnapshot& snapshot);

/// One JSON document; histograms carry per-bucket counts with their upper
/// bounds plus sum and count.
std::string FormatJson(const MetricsSnapshot& snapshot);

/// Prometheus text exposition format, version 0.0.4.
std::string FormatPrometheus(const MetricsSnapshot& snapshot);

/// Indented one-line-per-span rendering of a trace, oldest first:
/// "  selector.select 1.23ms" at two spaces per nesting depth.
std::string FormatTrace(const std::vector<TraceEvent>& events);

/// JSON string escaping shared by the exporters ('"', '\\', control
/// characters).
std::string JsonEscape(std::string_view s);

/// Buffered writer for benchmark result rows; see file comment. Pass the
/// output path explicitly or default to the PTK_BENCH_JSON environment
/// variable (disabled when unset/empty).
class BenchJsonWriter {
 public:
  BenchJsonWriter();  ///< Path from PTK_BENCH_JSON.
  explicit BenchJsonWriter(std::string path);
  ~BenchJsonWriter();

  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  bool enabled() const { return !path_.empty(); }

  /// One benchmark row. `scale` is the PTK_BENCH_SCALE multiplier the
  /// run used (bench/harness.h injects it); m / k are shape parameters,
  /// 0 when not applicable.
  void Record(const std::string& name, double wall_seconds, int threads,
              int m, int k, double scale = 1.0);

  /// Writes buffered records (if any) as a JSON array and clears the
  /// buffer.
  void Flush();

 private:
  std::string path_;
  std::vector<std::string> records_;
};

}  // namespace ptk::obs

#endif  // PTK_OBS_EXPORT_H_
