#ifndef PTK_OBS_METRICS_H_
#define PTK_OBS_METRICS_H_

// Zero-dependency observability: a process-wide registry of named
// monotonic counters, gauges, and fixed-bucket histograms, designed so the
// parallel hot paths (EI sweeps, Δ-bound batches, fold maintenance) can be
// instrumented without serializing on a shared lock:
//
//   - Counter increments land on one of kStripes cache-line-padded atomic
//     slots chosen by a per-thread index, so concurrent writers from the
//     thread pool never contend on the same cache line; Value() sums the
//     stripes.
//   - Histogram observations are one relaxed atomic bucket increment plus
//     a CAS-add into the running sum.
//   - Registration (GetCounter/GetGauge/GetHistogram) takes a mutex, but
//     call sites cache the returned handle in a function-local static, so
//     the hot path never touches the registry again. Handles are owned by
//     the registry and stay valid for its lifetime.
//
// Two off switches, both required to leave results bit-identical:
//   - runtime: MetricsRegistry::set_enabled(false) turns every recording
//     into a relaxed load + branch (ScopedTimer also skips its clock
//     reads);
//   - compile time: building with -DPTK_METRICS=0 (cmake -DPTK_METRICS=OFF)
//     swaps in the no-op stubs below — same API, empty bodies — so the
//     instrumented hot paths compile down to nothing.
//
// Instrumentation only ever *observes* values; nothing in the library
// reads a metric to make a decision, which is what keeps selector output
// byte-identical in all three modes (pinned by tests/obs_test.cc and the
// cross-build check in tools/check.sh).
//
// Naming convention (see DESIGN.md §4.10): ptk_<layer>_<what>[_total for
// monotonic counters | _seconds for latency histograms], e.g.
// ptk_engine_fold_seconds, ptk_selector_pairs_evaluated_total.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef PTK_METRICS
#define PTK_METRICS 1
#endif

namespace ptk::obs {

/// A point-in-time copy of every metric in a registry, sorted by name.
/// This is the one structure the exporters (obs/export.h) consume; taking
/// it is the only operation that walks the registry under its mutex.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::string help;
    int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::string help;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::string help;
    /// Finite upper bounds, ascending; counts has bounds.size() + 1
    /// entries, the last being the overflow (+Inf) bucket. Counts are
    /// per-bucket (not cumulative; the Prometheus exporter accumulates).
    std::vector<double> bounds;
    std::vector<int64_t> counts;
    double sum = 0.0;
    int64_t count = 0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// Upper bucket bounds for a Histogram, ascending and finite; an implicit
/// +Inf overflow bucket is always appended.
struct HistogramBuckets {
  std::vector<double> bounds;

  /// 1µs .. 10s in decades — wide enough for everything from a single
  /// Δ-bound evaluation to a full BF sweep.
  static HistogramBuckets DefaultLatency() {
    return {{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0}};
  }
};

#if PTK_METRICS

namespace internal {
/// Stripe index of the calling thread: threads get round-robin ids, so
/// up-to-kStripes concurrent writers hit distinct cache lines.
int ThreadStripe();
inline constexpr int kStripes = 8;
struct alignas(64) PaddedCounter {
  std::atomic<int64_t> value{0};
};
}  // namespace internal

class MetricsRegistry;

/// Monotonic counter. Add() with a negative delta is undefined (checked
/// only by the exporters' tests, not at runtime — this is a hot path).
class Counter {
 public:
  void Add(int64_t delta = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    stripes_[internal::ThreadStripe()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const auto& s : stripes_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  std::array<internal::PaddedCounter, internal::kStripes> stripes_;
  const std::atomic<bool>* enabled_;
};

/// Last-write-wins instantaneous value (queue depths, sizes). Unlike
/// Counter it supports decrements, so it is a single atomic — gauges sit
/// on coarse paths (batch entry/exit), not per-item loops.
class Gauge {
 public:
  void Set(int64_t value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Sub(int64_t delta = 1) { Add(-delta); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  std::atomic<int64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

/// Fixed-bucket histogram (latency distributions). Observation cost: one
/// branch per bucket bound (bounds are few and cache-resident), one
/// relaxed increment, one CAS-add for the sum.
class Histogram {
 public:
  void Observe(double value) {
    if (!enabled()) return;
    size_t b = 0;
    while (b < bounds_.size() && value > bounds_[b]) ++b;
    counts_[b].value.fetch_add(1, std::memory_order_relaxed);
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Whether observations are currently recorded; ScopedTimer checks this
  /// before paying for clock reads.
  bool enabled() const { return enabled_->load(std::memory_order_relaxed); }

  int64_t Count() const {
    int64_t total = 0;
    for (const auto& c : counts_) {
      total += c.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, HistogramBuckets buckets)
      : bounds_(std::move(buckets.bounds)),
        counts_(bounds_.size() + 1),
        enabled_(enabled) {}
  std::vector<double> bounds_;
  std::vector<internal::PaddedCounter> counts_;
  std::atomic<double> sum_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Owns every metric registered against it. Default() is the process-wide
/// instance all library instrumentation uses; tests build private
/// registries for golden-output checks.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  /// Finds or creates; the first registration's help string wins. A name
  /// registered as one type must not be re-requested as another (returns
  /// the existing metric of the requested type or aborts via assert in
  /// debug builds; release builds return a detached dummy to stay total).
  Counter* GetCounter(std::string_view name, std::string_view help);
  Gauge* GetGauge(std::string_view name, std::string_view help);
  Histogram* GetHistogram(
      std::string_view name, std::string_view help,
      const HistogramBuckets& buckets = HistogramBuckets::DefaultLatency());

  /// Runtime switch. Disabling stops all recording (existing values are
  /// kept and still exported); it never invalidates handles.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::atomic<bool> enabled_{true};
};

/// Registry-of-Default() conveniences — the form the instrumentation call
/// sites use, cached in a function-local static:
///   static obs::Counter* const c =
///       obs::GetCounter("ptk_x_total", "what it counts");
inline Counter* GetCounter(std::string_view name, std::string_view help) {
  return MetricsRegistry::Default().GetCounter(name, help);
}
inline Gauge* GetGauge(std::string_view name, std::string_view help) {
  return MetricsRegistry::Default().GetGauge(name, help);
}
inline Histogram* GetHistogram(
    std::string_view name, std::string_view help,
    const HistogramBuckets& buckets = HistogramBuckets::DefaultLatency()) {
  return MetricsRegistry::Default().GetHistogram(name, help, buckets);
}

#else  // !PTK_METRICS — no-op stubs with the identical surface.

class Counter {
 public:
  void Add(int64_t = 1) {}
  int64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t = 1) {}
  void Sub(int64_t = 1) {}
  int64_t Value() const { return 0; }
};

class Histogram {
 public:
  void Observe(double) {}
  bool enabled() const { return false; }
  int64_t Count() const { return 0; }
  double Sum() const { return 0.0; }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  Counter* GetCounter(std::string_view, std::string_view) {
    return &counter_;
  }
  Gauge* GetGauge(std::string_view, std::string_view) { return &gauge_; }
  Histogram* GetHistogram(
      std::string_view, std::string_view,
      const HistogramBuckets& = HistogramBuckets::DefaultLatency()) {
    return &histogram_;
  }

  void set_enabled(bool) {}
  bool enabled() const { return false; }
  MetricsSnapshot Snapshot() const { return {}; }

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

inline Counter* GetCounter(std::string_view name, std::string_view help) {
  return MetricsRegistry::Default().GetCounter(name, help);
}
inline Gauge* GetGauge(std::string_view name, std::string_view help) {
  return MetricsRegistry::Default().GetGauge(name, help);
}
inline Histogram* GetHistogram(
    std::string_view name, std::string_view help,
    const HistogramBuckets& buckets = HistogramBuckets::DefaultLatency()) {
  return MetricsRegistry::Default().GetHistogram(name, help, buckets);
}

#endif  // PTK_METRICS

}  // namespace ptk::obs

#endif  // PTK_OBS_METRICS_H_
