#include "obs/trace.h"

#include <chrono>

namespace ptk::obs {

#if PTK_METRICS

namespace {

// The innermost live span of the calling thread; parent of the next one.
thread_local Span* tls_current_span = nullptr;

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

double TraceClockSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  ring_.reserve(capacity_);
}

TraceBuffer& TraceBuffer::Default() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

void TraceBuffer::Record(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    events = ring_;
  } else {
    // next_ is the oldest slot once the ring has wrapped.
    for (size_t i = 0; i < ring_.size(); ++i) {
      events.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return events;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

int64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - static_cast<int64_t>(ring_.size());
}

Span::Span(std::string_view name, TraceBuffer* buffer)
    : buffer_(buffer != nullptr ? buffer : &TraceBuffer::Default()) {
  if (!buffer_->enabled()) {
    buffer_ = nullptr;
    return;
  }
  name_ = std::string(name);
  id_ = NextSpanId();
  parent_ = tls_current_span;
  if (parent_ != nullptr && parent_->buffer_ != nullptr) {
    parent_id_ = parent_->id_;
    depth_ = parent_->depth_ + 1;
  }
  start_ = TraceClockSeconds();
  tls_current_span = this;
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.id = id_;
  event.parent_id = parent_id_;
  event.depth = depth_;
  event.start_seconds = start_;
  event.duration_seconds = TraceClockSeconds() - start_;
  buffer_->Record(std::move(event));
  tls_current_span = parent_;
}

#else  // !PTK_METRICS

TraceBuffer& TraceBuffer::Default() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

#endif  // PTK_METRICS

}  // namespace ptk::obs
