#ifndef PTK_OBS_TRACE_H_
#define PTK_OBS_TRACE_H_

// RAII trace spans and histogram timers.
//
// A Span marks one timed region ("session.round", "selector.select", ...).
// Spans nest: the innermost live Span on the current thread is the parent
// of the next one constructed there, so a round's span ends up the parent
// of the selection and fold spans it encloses. On destruction the span is
// recorded into a bounded ring buffer (TraceBuffer) that overwrites its
// oldest entry when full — tracing never allocates without bound and never
// fails.
//
// ScopedTimer is the metrics-side sibling: it observes its lifetime into a
// Histogram (obs/metrics.h) and reads no clock when the histogram is
// null or recording is disabled.
//
// Like the metrics registry, tracing observes and never steers: results
// are identical with tracing on, off, or compiled out (PTK_METRICS=0
// stubs both).

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ptk::obs {

/// One completed span. Times are seconds on the steady clock, relative to
/// the process's first use of the trace clock (so they order and subtract
/// meaningfully within one process).
struct TraceEvent {
  std::string name;
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 when the span had no live parent.
  int depth = 0;           ///< 0 for roots, parent.depth + 1 otherwise.
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

#if PTK_METRICS

/// Seconds since the process's trace epoch (first call).
double TraceClockSeconds();

/// Bounded ring of completed spans. Default() is what Span records into;
/// tests build private buffers.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 1024);

  static TraceBuffer& Default();

  void Record(TraceEvent event);

  /// Buffered events, oldest first. At most capacity(); earlier events
  /// are gone (see dropped()).
  std::vector<TraceEvent> Events() const;

  void Clear();

  size_t capacity() const { return capacity_; }
  /// Events overwritten so far — how much history the ring has shed.
  int64_t dropped() const;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;         // ring slot of the next write
  int64_t recorded_ = 0;    // total Record() calls while enabled
  std::atomic<bool> enabled_{true};
};

/// RAII span; see file comment. Cheap when the buffer is disabled (one
/// relaxed load, no clock).
class Span {
 public:
  explicit Span(std::string_view name, TraceBuffer* buffer = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  uint64_t id() const { return id_; }

 private:
  TraceBuffer* buffer_;  // null when inactive
  Span* parent_ = nullptr;
  std::string name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  int depth_ = 0;
  double start_ = 0.0;
};

/// Observes its lifetime (seconds) into `histogram` on destruction.
/// Null histogram or disabled recording → no clock reads at all.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram != nullptr && histogram->enabled() ? histogram
                                                                : nullptr),
        start_(histogram_ != nullptr ? TraceClockSeconds() : 0.0) {}

  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(TraceClockSeconds() - start_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  double start_;
};

#else  // !PTK_METRICS

inline double TraceClockSeconds() { return 0.0; }

class TraceBuffer {
 public:
  explicit TraceBuffer(size_t = 1024) {}
  static TraceBuffer& Default();
  void Record(TraceEvent) {}
  std::vector<TraceEvent> Events() const { return {}; }
  void Clear() {}
  size_t capacity() const { return 0; }
  int64_t dropped() const { return 0; }
  void set_enabled(bool) {}
  bool enabled() const { return false; }
};

class Span {
 public:
  explicit Span(std::string_view, TraceBuffer* = nullptr) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  uint64_t id() const { return 0; }
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram*) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#endif  // PTK_METRICS

}  // namespace ptk::obs

#endif  // PTK_OBS_TRACE_H_
