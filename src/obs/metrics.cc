#include "obs/metrics.h"

#include <cassert>

namespace ptk::obs {

#if PTK_METRICS

namespace internal {

int ThreadStripe() {
  static std::atomic<uint32_t> next{0};
  thread_local const int stripe =
      static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<uint32_t>(kStripes));
  return stripe;
}

}  // namespace internal

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked intentionally: instrumentation handles cached in function-local
  // statics across the library must outlive every other static destructor.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.help = std::string(help);
    entry.counter.reset(new Counter(&enabled_));
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  assert(it->second.counter != nullptr &&
         "metric name already registered as a different type");
  if (it->second.counter == nullptr) {
    // Type clash in a release build: hand out a detached metric rather
    // than corrupting the registered one.
    static Counter* orphan = new Counter(&enabled_);
    return orphan;
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.help = std::string(help);
    entry.gauge.reset(new Gauge(&enabled_));
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  assert(it->second.gauge != nullptr &&
         "metric name already registered as a different type");
  if (it->second.gauge == nullptr) {
    static Gauge* orphan = new Gauge(&enabled_);
    return orphan;
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         const HistogramBuckets& buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.help = std::string(help);
    entry.histogram.reset(new Histogram(&enabled_, buckets));
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  assert(it->second.histogram != nullptr &&
         "metric name already registered as a different type");
  if (it->second.histogram == nullptr) {
    static Histogram* orphan =
        new Histogram(&enabled_, HistogramBuckets::DefaultLatency());
    return orphan;
  }
  return it->second.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) {
      snapshot.counters.push_back({name, entry.help, entry.counter->Value()});
    } else if (entry.gauge != nullptr) {
      snapshot.gauges.push_back({name, entry.help, entry.gauge->Value()});
    } else if (entry.histogram != nullptr) {
      MetricsSnapshot::HistogramValue h;
      h.name = name;
      h.help = entry.help;
      h.bounds = entry.histogram->bounds_;
      h.counts.reserve(entry.histogram->counts_.size());
      for (const auto& c : entry.histogram->counts_) {
        h.counts.push_back(c.value.load(std::memory_order_relaxed));
      }
      h.sum = entry.histogram->Sum();
      h.count = 0;
      for (const int64_t c : h.counts) h.count += c;
      snapshot.histograms.push_back(std::move(h));
    }
  }
  return snapshot;
}

#else  // !PTK_METRICS

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

#endif  // PTK_METRICS

}  // namespace ptk::obs
