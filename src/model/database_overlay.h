#ifndef PTK_MODEL_DATABASE_OVERLAY_H_
#define PTK_MODEL_DATABASE_OVERLAY_H_

#include <optional>
#include <vector>

#include "model/database.h"
#include "util/status.h"

namespace ptk::model {

/// A copy-on-write working view of a finalized database whose per-object
/// marginals evolve as crowd answers are folded in (the AdaptiveCleaner
/// update rule). The copy is genuinely lazy: until the first Reweight (or
/// an explicit Materialize()) db() returns the *base database itself*, so
/// an overlay that is never written — every batch-model cleaning session,
/// every serving session in the default mode — costs nothing and keeps
/// pointer identity with the base. That identity is what lets the serving
/// runtime share one read-only membership calculator and PB-tree across
/// hundreds of sessions (SelectorOptions::MembershipFor and SharedTreeFor
/// compare database addresses). The first Reweight copies the base once;
/// every Reweight afterwards mutates only the touched object's instances,
/// their copies in the global sorted index, and the object's suffix
/// masses — O(instances of that object), independent of how many other
/// objects the database holds.
///
/// Two deliberate deviations from rebuilding a fresh Database per answer:
///
///  * Instance *values* never change and instances are never dropped, so
///    the global (value, oid, iid) sorted order — and with it every
///    Position — is stable across reweights. This is what makes the
///    incremental artifact maintenance (membership refresh, PB-tree
///    UpdateObject) possible.
///  * An instance whose reweighted probability is 0 keeps its slot with
///    exactly 0 mass instead of being removed. Zero-mass instances are
///    exact no-ops everywhere downstream (prefix masses, bound objects,
///    entropies, enumeration), so results match a zero-dropping rebuild
///    to the last bit; only iid numbering differs.
///
/// db() stays finalized() and valid at all times; consumers read it like
/// any other database. Each successful Reweight bumps the working
/// database's mutation_version(), which version-aware caches key on.
/// Caution for artifact holders: Materialize() changes which Database
/// object db() refers to, so anything built against the pre-copy db()
/// (membership calculators, PB-trees) keeps pointing at the immutable
/// base — consumers that intend to write must materialize *before*
/// building artifacts (engine::RankingEngine::PrepareWorkingCopy) or
/// rebuild them afterwards.
class DatabaseOverlay {
 public:
  /// Wraps `base` (which must be finalized and outlive the overlay).
  /// Nothing is copied yet.
  explicit DatabaseOverlay(const Database& base);

  const Database& db() const {
    return copy_.has_value() ? *copy_ : *base_;
  }
  uint64_t version() const { return db().mutation_version(); }

  /// Whether the private working copy exists (i.e., db() no longer
  /// aliases the base database).
  bool materialized() const { return copy_.has_value(); }

  /// Forces the private copy into existence. Idempotent. Call before
  /// building incremental artifacts on db() when Reweight will follow.
  void Materialize();

  /// Replaces object `oid`'s instance probabilities (parallel to its
  /// value-sorted instance list) and renormalizes them to sum exactly
  /// to 1. Entries may be zero; a non-positive total (the object's
  /// marginal would vanish) fails with InvalidArgument and leaves the
  /// overlay untouched. Materializes the working copy on first use.
  util::Status Reweight(ObjectId oid, const std::vector<double>& probs);

  /// Persist-restore variant of Reweight: installs `probs` *verbatim*, no
  /// renormalization. The values are a snapshot of what Reweight produced
  /// in a previous process (already summing to exactly what they summed to
  /// then), and re-dividing by that not-exactly-1.0 total would flip last
  /// bits and break bit-identical recovery. Same validation otherwise;
  /// materializes the working copy on first use.
  util::Status RestoreExact(ObjectId oid, const std::vector<double>& probs);

 private:
  const Database* base_;
  std::optional<Database> copy_;
};

}  // namespace ptk::model

#endif  // PTK_MODEL_DATABASE_OVERLAY_H_
