#ifndef PTK_MODEL_DATABASE_OVERLAY_H_
#define PTK_MODEL_DATABASE_OVERLAY_H_

#include <optional>
#include <vector>

#include "model/database.h"
#include "util/status.h"

namespace ptk::model {

/// A copy-on-write working view of a finalized database whose per-object
/// marginals evolve as crowd answers are folded in (the AdaptiveCleaner
/// update rule). The working view is a sparse *delta database*
/// (Database::MakeDelta): until the first Reweight (or an explicit
/// Materialize()) db() returns the *base database itself*, and after that
/// it returns a delta that stores only the reweighted objects' overrides
/// and resolves everything else against the shared base. An overlay is
/// therefore O(answers folded) in memory for its whole lifetime — never a
/// full O(m) copy — which is what lets the serving runtime keep hundreds
/// of written-to sessions sharing one base database, one membership
/// calculator, and one PB-tree. Each Reweight mutates only the touched
/// object's override (instances + suffix masses), O(instances of that
/// object), independent of how many other objects the database holds.
///
/// Two deliberate deviations from rebuilding a fresh Database per answer:
///
///  * Instance *values* never change and instances are never dropped, so
///    the global (value, oid, iid) sorted order — and with it every
///    Position — is stable across reweights. This is what makes the
///    incremental artifact maintenance (membership refresh, PB-tree
///    UpdateObject) possible.
///  * An instance whose reweighted probability is 0 keeps its slot with
///    exactly 0 mass instead of being removed. Zero-mass instances are
///    exact no-ops everywhere downstream (prefix masses, bound objects,
///    entropies, enumeration), so results match a zero-dropping rebuild
///    to the last bit; only iid numbering differs.
///
/// db() stays finalized() and valid at all times; consumers read it like
/// any other database. Each successful Reweight bumps the working
/// database's mutation_version(), which version-aware caches key on.
/// Caution for artifact holders: Materialize() changes which Database
/// object db() refers to (base -> delta). Artifacts built against the
/// base stay valid for the base; per-session artifacts over the delta are
/// themselves deltas (rank::MembershipCalculator's delta mode,
/// pbtree::DeltaTree) that layer on the same shared base artifacts.
class DatabaseOverlay {
 public:
  /// Wraps `base` (which must be finalized and outlive the overlay).
  /// Nothing is copied yet.
  explicit DatabaseOverlay(const Database& base);

  const Database& db() const {
    return copy_.has_value() ? *copy_ : *base_;
  }
  uint64_t version() const { return db().mutation_version(); }

  /// Whether the private working copy exists (i.e., db() no longer
  /// aliases the base database).
  bool materialized() const { return copy_.has_value(); }

  /// Forces the private copy into existence. Idempotent. Call before
  /// building incremental artifacts on db() when Reweight will follow.
  void Materialize();

  /// Replaces object `oid`'s instance probabilities (parallel to its
  /// value-sorted instance list) and renormalizes them to sum exactly
  /// to 1. Entries may be zero; a non-positive total (the object's
  /// marginal would vanish) fails with InvalidArgument and leaves the
  /// overlay untouched. Materializes the working copy on first use.
  util::Status Reweight(ObjectId oid, const std::vector<double>& probs);

  /// Persist-restore variant of Reweight: installs `probs` *verbatim*, no
  /// renormalization. The values are a snapshot of what Reweight produced
  /// in a previous process (already summing to exactly what they summed to
  /// then), and re-dividing by that not-exactly-1.0 total would flip last
  /// bits and break bit-identical recovery. Same validation otherwise;
  /// materializes the working copy on first use.
  util::Status RestoreExact(ObjectId oid, const std::vector<double>& probs);

  /// Resident bytes of the delta (0 while unmaterialized). O(answers).
  int64_t DeltaBytes() const {
    return copy_.has_value() ? copy_->DeltaBytes() : 0;
  }

 private:
  const Database* base_;
  std::optional<Database> copy_;
};

}  // namespace ptk::model

#endif  // PTK_MODEL_DATABASE_OVERLAY_H_
