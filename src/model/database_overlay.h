#ifndef PTK_MODEL_DATABASE_OVERLAY_H_
#define PTK_MODEL_DATABASE_OVERLAY_H_

#include <vector>

#include "model/database.h"
#include "util/status.h"

namespace ptk::model {

/// A copy-on-write working view of a finalized database whose per-object
/// marginals evolve as crowd answers are folded in (the AdaptiveCleaner
/// update rule). The base database is copied exactly once, at
/// construction; every Reweight afterwards mutates only the touched
/// object's instances, their copies in the global sorted index, and the
/// object's suffix masses — O(instances of that object), independent of
/// how many other objects the database holds.
///
/// Two deliberate deviations from rebuilding a fresh Database per answer:
///
///  * Instance *values* never change and instances are never dropped, so
///    the global (value, oid, iid) sorted order — and with it every
///    Position — is stable across reweights. This is what makes the
///    incremental artifact maintenance (membership refresh, PB-tree
///    UpdateObject) possible.
///  * An instance whose reweighted probability is 0 keeps its slot with
///    exactly 0 mass instead of being removed. Zero-mass instances are
///    exact no-ops everywhere downstream (prefix masses, bound objects,
///    entropies, enumeration), so results match a zero-dropping rebuild
///    to the last bit; only iid numbering differs.
///
/// db() stays finalized() and valid at all times; consumers read it like
/// any other database. Each successful Reweight bumps the database's
/// mutation_version(), which version-aware caches key on.
class DatabaseOverlay {
 public:
  /// Copies `base` (which must be finalized). The copy is this overlay's
  /// working database; `base` itself is never touched.
  explicit DatabaseOverlay(const Database& base);

  const Database& db() const { return db_; }
  uint64_t version() const { return db_.mutation_version(); }

  /// Replaces object `oid`'s instance probabilities (parallel to its
  /// value-sorted instance list) and renormalizes them to sum exactly
  /// to 1. Entries may be zero; a non-positive total (the object's
  /// marginal would vanish) fails with InvalidArgument and leaves the
  /// overlay untouched.
  util::Status Reweight(ObjectId oid, const std::vector<double>& probs);

 private:
  Database db_;
};

}  // namespace ptk::model

#endif  // PTK_MODEL_DATABASE_OVERLAY_H_
