#include "model/database_overlay.h"

#include <cassert>
#include <cmath>
#include <string>

namespace ptk::model {

DatabaseOverlay::DatabaseOverlay(const Database& base) : base_(&base) {
  assert(base.finalized());
}

void DatabaseOverlay::Materialize() {
  if (!copy_.has_value()) copy_.emplace(Database::MakeDelta(*base_));
}

util::Status DatabaseOverlay::Reweight(ObjectId oid,
                                       const std::vector<double>& probs) {
  if (oid < 0 || oid >= db().num_objects()) {
    return util::Status::InvalidArgument(
        "DatabaseOverlay::Reweight: object id " + std::to_string(oid) +
        " out of range [0, " + std::to_string(db().num_objects()) + ")");
  }
  const int n = db().object(oid).num_instances();
  if (static_cast<int>(probs.size()) != n) {
    return util::Status::InvalidArgument(
        "DatabaseOverlay::Reweight: object " + std::to_string(oid) +
        " has " + std::to_string(n) + " instances, got " +
        std::to_string(probs.size()) + " probabilities");
  }
  double total = 0.0;
  for (double p : probs) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      return util::Status::InvalidArgument(
          "DatabaseOverlay::Reweight: probabilities must be finite and "
          ">= 0");
    }
    total += p;
  }
  if (!(total > 0.0)) {
    return util::Status::InvalidArgument(
        "DatabaseOverlay::Reweight: object " + std::to_string(oid) +
        "'s marginal would vanish (total mass " + std::to_string(total) +
        ")");
  }
  Materialize();
  copy_->ReweightObjectInPlace(oid, probs);
  return util::Status::OK();
}

util::Status DatabaseOverlay::RestoreExact(ObjectId oid,
                                           const std::vector<double>& probs) {
  if (oid < 0 || oid >= db().num_objects()) {
    return util::Status::InvalidArgument(
        "DatabaseOverlay::RestoreExact: object id " + std::to_string(oid) +
        " out of range [0, " + std::to_string(db().num_objects()) + ")");
  }
  const int n = db().object(oid).num_instances();
  if (static_cast<int>(probs.size()) != n) {
    return util::Status::InvalidArgument(
        "DatabaseOverlay::RestoreExact: object " + std::to_string(oid) +
        " has " + std::to_string(n) + " instances, got " +
        std::to_string(probs.size()) + " probabilities");
  }
  double total = 0.0;
  for (double p : probs) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      return util::Status::InvalidArgument(
          "DatabaseOverlay::RestoreExact: probabilities must be finite and "
          ">= 0");
    }
    total += p;
  }
  if (!(total > 0.0)) {
    return util::Status::InvalidArgument(
        "DatabaseOverlay::RestoreExact: object " + std::to_string(oid) +
        "'s marginal would vanish (total mass " + std::to_string(total) +
        ")");
  }
  Materialize();
  copy_->SetObjectProbsInPlace(oid, probs);
  return util::Status::OK();
}

}  // namespace ptk::model
