#include "model/database.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace ptk::model {

ObjectId Database::AddObject(std::vector<std::pair<double, double>> pairs,
                             std::string label) {
  const ObjectId oid = static_cast<ObjectId>(objects_.size());
  objects_.emplace_back(oid, std::move(pairs));
  objects_.back().set_label(std::move(label));
  finalized_ = false;
  return oid;
}

util::Status Database::Finalize(double tolerance) {
  if (objects_.empty()) {
    return util::Status::InvalidArgument("database has no objects");
  }
  for (UncertainObject& obj : objects_) {
    if (obj.instances_.empty()) {
      return util::Status::InvalidArgument(
          "object " + std::to_string(obj.id()) + " has no instances");
    }
    double total = 0.0;
    for (size_t i = 0; i < obj.instances_.size(); ++i) {
      const Instance& inst = obj.instances_[i];
      if (!(inst.prob > 0.0) || inst.prob > 1.0 + tolerance) {
        return util::Status::InvalidArgument(
            "object " + std::to_string(obj.id()) +
            " has an instance with probability outside (0, 1]");
      }
      if (!std::isfinite(inst.value)) {
        return util::Status::InvalidArgument(
            "object " + std::to_string(obj.id()) +
            " has a non-finite instance value");
      }
      if (i > 0 && obj.instances_[i - 1].value == inst.value) {
        return util::Status::InvalidArgument(
            "object " + std::to_string(obj.id()) +
            " has duplicate instance values; merge them before loading");
      }
      total += inst.prob;
    }
    if (std::abs(total - 1.0) > tolerance) {
      return util::Status::InvalidArgument(
          "object " + std::to_string(obj.id()) +
          " probabilities sum to " + std::to_string(total) + ", not 1");
    }
    // Renormalize exactly so possible-world products are clean.
    for (Instance& inst : obj.instances_) inst.prob /= total;
  }

  BuildIndex();
  finalized_ = true;
  ++mutation_version_;
  return util::Status::OK();
}

void Database::BuildIndex() {
  sorted_.clear();
  for (const UncertainObject& obj : objects_) {
    sorted_.insert(sorted_.end(), obj.instances_.begin(),
                   obj.instances_.end());
  }
  std::sort(sorted_.begin(), sorted_.end(), InstanceLess);

  offset_.assign(objects_.size(), 0);
  int running = 0;
  for (size_t o = 0; o < objects_.size(); ++o) {
    offset_[o] = running;
    running += objects_[o].num_instances();
  }
  position_.assign(running, -1);
  obj_positions_.assign(objects_.size(), {});
  obj_suffix_mass_.assign(objects_.size(), {});
  for (size_t pos = 0; pos < sorted_.size(); ++pos) {
    const Instance& inst = sorted_[pos];
    position_[offset_[inst.oid] + inst.iid] = static_cast<Position>(pos);
    obj_positions_[inst.oid].push_back(static_cast<Position>(pos));
  }
  for (size_t o = 0; o < objects_.size(); ++o) {
    const auto& positions = obj_positions_[o];
    auto& suffix = obj_suffix_mass_[o];
    suffix.assign(positions.size() + 1, 0.0);
    for (int i = static_cast<int>(positions.size()) - 1; i >= 0; --i) {
      suffix[i] = suffix[i + 1] + sorted_[positions[i]].prob;
    }
  }
}

void Database::ReweightObjectInPlace(ObjectId oid,
                                     const std::vector<double>& probs) {
  if (delta_base_ != nullptr) {
    UncertainObject& obj = EnsureOverride(oid);
    double total = 0.0;
    for (double p : probs) total += p;
    for (int i = 0; i < obj.num_instances(); ++i) {
      obj.instances_[i].prob = probs[i] / total;
    }
    RefreshOverrideSuffix(oid);
    ++mutation_version_;
    return;
  }
  UncertainObject& obj = objects_[oid];
  double total = 0.0;
  for (double p : probs) total += p;
  for (int i = 0; i < obj.num_instances(); ++i) {
    const double p = probs[i] / total;
    obj.instances_[i].prob = p;
    sorted_[position_[offset_[oid] + i]].prob = p;
  }
  // Suffix masses over the object's sorted positions (MassBeyond/Before).
  const auto& positions = obj_positions_[oid];
  auto& suffix = obj_suffix_mass_[oid];
  for (int i = static_cast<int>(positions.size()) - 1; i >= 0; --i) {
    suffix[i] = suffix[i + 1] + sorted_[positions[i]].prob;
  }
  ++mutation_version_;
}

void Database::SetObjectProbsInPlace(ObjectId oid,
                                     const std::vector<double>& probs) {
  if (delta_base_ != nullptr) {
    UncertainObject& obj = EnsureOverride(oid);
    for (int i = 0; i < obj.num_instances(); ++i) {
      obj.instances_[i].prob = probs[i];
    }
    RefreshOverrideSuffix(oid);
    ++mutation_version_;
    return;
  }
  UncertainObject& obj = objects_[oid];
  for (int i = 0; i < obj.num_instances(); ++i) {
    obj.instances_[i].prob = probs[i];
    sorted_[position_[offset_[oid] + i]].prob = probs[i];
  }
  const auto& positions = obj_positions_[oid];
  auto& suffix = obj_suffix_mass_[oid];
  for (int i = static_cast<int>(positions.size()) - 1; i >= 0; --i) {
    suffix[i] = suffix[i + 1] + sorted_[positions[i]].prob;
  }
  ++mutation_version_;
}

double Database::MassBeyond(ObjectId oid, Position pos) const {
  const Database& idx = delta_base_ != nullptr ? *delta_base_ : *this;
  const auto& positions = idx.obj_positions_[oid];
  // First of this object's positions strictly greater than pos.
  const auto it = std::upper_bound(positions.begin(), positions.end(), pos);
  const size_t slot = it - positions.begin();
  if (delta_base_ != nullptr) {
    const auto over = over_slot_.find(oid);
    if (over != over_slot_.end()) return over_suffix_[over->second][slot];
  }
  return idx.obj_suffix_mass_[oid][slot];
}

double Database::MassBefore(ObjectId oid, Position pos) const {
  const Database& idx = delta_base_ != nullptr ? *delta_base_ : *this;
  const auto& positions = idx.obj_positions_[oid];
  const auto it = std::lower_bound(positions.begin(), positions.end(), pos);
  const size_t slot = it - positions.begin();
  if (delta_base_ != nullptr) {
    const auto over = over_slot_.find(oid);
    if (over != over_slot_.end()) {
      const auto& suffix = over_suffix_[over->second];
      return suffix[0] - suffix[slot];
    }
  }
  const auto& suffix = idx.obj_suffix_mass_[oid];
  return suffix[0] - suffix[slot];
}

Database Database::MakeDelta(const Database& base) {
  assert(base.finalized_ && base.delta_base_ == nullptr);
  Database delta;
  delta.delta_base_ = &base;
  delta.finalized_ = true;
  delta.mutation_version_ = base.mutation_version_;
  return delta;
}

const UncertainObject& Database::DeltaObject(ObjectId oid) const {
  const auto it = over_slot_.find(oid);
  if (it != over_slot_.end()) return over_objects_[it->second];
  return delta_base_->objects_[oid];
}

UncertainObject& Database::EnsureOverride(ObjectId oid) {
  auto it = over_slot_.find(oid);
  if (it == over_slot_.end()) {
    const int32_t slot = static_cast<int32_t>(over_objects_.size());
    over_objects_.push_back(delta_base_->objects_[oid]);
    over_suffix_.push_back(delta_base_->obj_suffix_mass_[oid]);
    it = over_slot_.emplace(oid, slot).first;
  }
  return over_objects_[it->second];
}

void Database::RefreshOverrideSuffix(ObjectId oid) {
  const int32_t slot = over_slot_.at(oid);
  const UncertainObject& obj = over_objects_[slot];
  auto& suffix = over_suffix_[slot];
  // Within one object, ascending global position order is ascending value
  // order is iid order, so suffix[i] accumulates the same doubles in the
  // same order as the base-mode loop over sorted_[positions[i]].prob.
  for (int i = obj.num_instances() - 1; i >= 0; --i) {
    suffix[i] = suffix[i + 1] + obj.instances_[i].prob;
  }
}

std::vector<ObjectId> Database::OverriddenObjects() const {
  std::vector<ObjectId> oids;
  oids.reserve(over_slot_.size());
  for (const auto& [oid, slot] : over_slot_) oids.push_back(oid);
  std::sort(oids.begin(), oids.end());
  return oids;
}

int64_t Database::DeltaBytes() const {
  int64_t bytes = 0;
  for (const UncertainObject& obj : over_objects_) {
    bytes += static_cast<int64_t>(sizeof(UncertainObject)) +
             static_cast<int64_t>(obj.num_instances() * sizeof(Instance));
  }
  for (const auto& suffix : over_suffix_) {
    bytes += static_cast<int64_t>(suffix.capacity() * sizeof(double));
  }
  // Hash map node + bucket overhead, approximated.
  bytes += static_cast<int64_t>(over_slot_.size() * 64);
  bytes += static_cast<int64_t>(bulk_objects_.capacity() *
                                sizeof(UncertainObject)) +
           static_cast<int64_t>(bulk_sorted_.capacity() * sizeof(Instance));
  for (const UncertainObject& obj : bulk_objects_) {
    bytes += static_cast<int64_t>(obj.num_instances() * sizeof(Instance));
  }
  return bytes;
}

void Database::EnsureBulk() const {
  if (bulk_version_ == mutation_version_) return;
  if (bulk_version_ == 0) {
    bulk_objects_ = delta_base_->objects_;
    bulk_sorted_ = delta_base_->sorted_;
  }
  // Re-patching every override over the existing view is correct because
  // overrides never revert to base values.
  for (const auto& [oid, slot] : over_slot_) {
    const UncertainObject& obj = over_objects_[slot];
    bulk_objects_[oid] = obj;
    const auto& positions = delta_base_->obj_positions_[oid];
    for (int i = 0; i < obj.num_instances(); ++i) {
      bulk_sorted_[positions[i]].prob = obj.instance(i).prob;
    }
  }
  bulk_version_ = mutation_version_;
}

}  // namespace ptk::model
