#include "model/database.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace ptk::model {

ObjectId Database::AddObject(std::vector<std::pair<double, double>> pairs,
                             std::string label) {
  const ObjectId oid = static_cast<ObjectId>(objects_.size());
  objects_.emplace_back(oid, std::move(pairs));
  objects_.back().set_label(std::move(label));
  finalized_ = false;
  return oid;
}

util::Status Database::Finalize(double tolerance) {
  if (objects_.empty()) {
    return util::Status::InvalidArgument("database has no objects");
  }
  for (UncertainObject& obj : objects_) {
    if (obj.instances_.empty()) {
      return util::Status::InvalidArgument(
          "object " + std::to_string(obj.id()) + " has no instances");
    }
    double total = 0.0;
    for (size_t i = 0; i < obj.instances_.size(); ++i) {
      const Instance& inst = obj.instances_[i];
      if (!(inst.prob > 0.0) || inst.prob > 1.0 + tolerance) {
        return util::Status::InvalidArgument(
            "object " + std::to_string(obj.id()) +
            " has an instance with probability outside (0, 1]");
      }
      if (!std::isfinite(inst.value)) {
        return util::Status::InvalidArgument(
            "object " + std::to_string(obj.id()) +
            " has a non-finite instance value");
      }
      if (i > 0 && obj.instances_[i - 1].value == inst.value) {
        return util::Status::InvalidArgument(
            "object " + std::to_string(obj.id()) +
            " has duplicate instance values; merge them before loading");
      }
      total += inst.prob;
    }
    if (std::abs(total - 1.0) > tolerance) {
      return util::Status::InvalidArgument(
          "object " + std::to_string(obj.id()) +
          " probabilities sum to " + std::to_string(total) + ", not 1");
    }
    // Renormalize exactly so possible-world products are clean.
    for (Instance& inst : obj.instances_) inst.prob /= total;
  }

  BuildIndex();
  finalized_ = true;
  ++mutation_version_;
  return util::Status::OK();
}

void Database::BuildIndex() {
  sorted_.clear();
  for (const UncertainObject& obj : objects_) {
    sorted_.insert(sorted_.end(), obj.instances_.begin(),
                   obj.instances_.end());
  }
  std::sort(sorted_.begin(), sorted_.end(), InstanceLess);

  offset_.assign(objects_.size(), 0);
  int running = 0;
  for (size_t o = 0; o < objects_.size(); ++o) {
    offset_[o] = running;
    running += objects_[o].num_instances();
  }
  position_.assign(running, -1);
  obj_positions_.assign(objects_.size(), {});
  obj_suffix_mass_.assign(objects_.size(), {});
  for (size_t pos = 0; pos < sorted_.size(); ++pos) {
    const Instance& inst = sorted_[pos];
    position_[offset_[inst.oid] + inst.iid] = static_cast<Position>(pos);
    obj_positions_[inst.oid].push_back(static_cast<Position>(pos));
  }
  for (size_t o = 0; o < objects_.size(); ++o) {
    const auto& positions = obj_positions_[o];
    auto& suffix = obj_suffix_mass_[o];
    suffix.assign(positions.size() + 1, 0.0);
    for (int i = static_cast<int>(positions.size()) - 1; i >= 0; --i) {
      suffix[i] = suffix[i + 1] + sorted_[positions[i]].prob;
    }
  }
}

void Database::ReweightObjectInPlace(ObjectId oid,
                                     const std::vector<double>& probs) {
  UncertainObject& obj = objects_[oid];
  double total = 0.0;
  for (double p : probs) total += p;
  for (int i = 0; i < obj.num_instances(); ++i) {
    const double p = probs[i] / total;
    obj.instances_[i].prob = p;
    sorted_[position_[offset_[oid] + i]].prob = p;
  }
  // Suffix masses over the object's sorted positions (MassBeyond/Before).
  const auto& positions = obj_positions_[oid];
  auto& suffix = obj_suffix_mass_[oid];
  for (int i = static_cast<int>(positions.size()) - 1; i >= 0; --i) {
    suffix[i] = suffix[i + 1] + sorted_[positions[i]].prob;
  }
  ++mutation_version_;
}

void Database::SetObjectProbsInPlace(ObjectId oid,
                                     const std::vector<double>& probs) {
  UncertainObject& obj = objects_[oid];
  for (int i = 0; i < obj.num_instances(); ++i) {
    obj.instances_[i].prob = probs[i];
    sorted_[position_[offset_[oid] + i]].prob = probs[i];
  }
  const auto& positions = obj_positions_[oid];
  auto& suffix = obj_suffix_mass_[oid];
  for (int i = static_cast<int>(positions.size()) - 1; i >= 0; --i) {
    suffix[i] = suffix[i + 1] + sorted_[positions[i]].prob;
  }
  ++mutation_version_;
}

double Database::MassBeyond(ObjectId oid, Position pos) const {
  const auto& positions = obj_positions_[oid];
  // First of this object's positions strictly greater than pos.
  const auto it = std::upper_bound(positions.begin(), positions.end(), pos);
  return obj_suffix_mass_[oid][it - positions.begin()];
}

double Database::MassBefore(ObjectId oid, Position pos) const {
  const auto& positions = obj_positions_[oid];
  const auto it = std::lower_bound(positions.begin(), positions.end(), pos);
  const size_t idx = it - positions.begin();
  return obj_suffix_mass_[oid][0] - obj_suffix_mass_[oid][idx];
}

}  // namespace ptk::model
