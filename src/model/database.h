#ifndef PTK_MODEL_DATABASE_H_
#define PTK_MODEL_DATABASE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/instance.h"
#include "model/uncertain_object.h"
#include "util/status.h"

namespace ptk::persist {
class CatalogIo;  // bit-exact Database (de)serialization, persist/catalog.cc
}

namespace ptk::model {

/// Global position of an instance in the database-wide (value, oid, iid)
/// ascending order; position 0 is the highest-ranked instance.
using Position = int32_t;

/// A probabilistic database: a set of independent uncertain objects under
/// possible-world semantics (Section 3.1). After Finalize() the database is
/// immutable and exposes a global value-sorted instance index used by the
/// top-k enumerator and the membership calculator. The only sanctioned
/// post-Finalize mutation is DatabaseOverlay's in-place marginal reweight,
/// which keeps every value (and therefore the sorted index) intact and
/// bumps mutation_version() so cached derived artifacts can detect
/// staleness (SelectorOptions::MembershipFor).
///
/// A Database can also be a *delta* over a shared immutable base
/// (DatabaseOverlay::Materialize creates one). A delta stores only the
/// objects whose marginals have been reweighted — memory is O(answers
/// folded), not O(m) — and resolves everything else against the base:
/// object() checks the override map first, MassBeyond/MassBefore read the
/// base positions with override suffix masses, and PositionOf delegates
/// outright (reweights never change values, so the global sorted order is
/// shared verbatim). Consumers that genuinely need the full materialized
/// arrays — objects() and sorted_instances() — get a lazily built bulk
/// view patched with the overrides; that view costs O(m) and is the
/// documented exception (brute-force selection, world sampling, exact
/// semantics), never touched by the incremental serving path. A delta is
/// single-writer: its owner serializes reweights, while any number of
/// threads may concurrently read the (never-mutated) base.
class Database {
 public:
  Database() = default;

  /// Adds an object from (value, probability) pairs and returns its id.
  /// Must be called before Finalize().
  ObjectId AddObject(std::vector<std::pair<double, double>> pairs,
                     std::string label = "");

  /// Validates every object (positive probabilities summing to 1 within
  /// `tolerance`, no duplicate values inside one object, at least one
  /// instance) and builds the sorted index. Probabilities are renormalized
  /// exactly to 1 so downstream math is numerically clean.
  util::Status Finalize(double tolerance = 1e-6);

  bool finalized() const { return finalized_; }

  /// Monotonic counter of state changes: bumped by Finalize() and by every
  /// in-place marginal reweight (DatabaseOverlay). Consumers that cache
  /// per-database artifacts (membership tables, PB-trees) record the
  /// version they were built against and treat a mismatch as stale.
  uint64_t mutation_version() const { return mutation_version_; }

  int num_objects() const {
    return delta_base_ != nullptr ? delta_base_->num_objects()
                                  : static_cast<int>(objects_.size());
  }
  int num_instances() const {
    return delta_base_ != nullptr ? delta_base_->num_instances()
                                  : static_cast<int>(sorted_.size());
  }

  const UncertainObject& object(ObjectId oid) const {
    if (delta_base_ == nullptr) [[likely]] return objects_[oid];
    return DeltaObject(oid);
  }

  /// Full object array. In delta mode this materializes the O(m) bulk view
  /// (base copy patched with overrides) on first use; incremental callers
  /// should use object() instead.
  const std::vector<UncertainObject>& objects() const {
    if (delta_base_ == nullptr) [[likely]] return objects_;
    EnsureBulk();
    return bulk_objects_;
  }

  const Instance& instance(InstanceRef ref) const {
    return object(ref.oid).instance(ref.iid);
  }

  // ---- Delta mode ----

  /// True if this database is a sparse delta over a shared base.
  bool is_delta() const { return delta_base_ != nullptr; }

  /// The base this delta resolves against, or nullptr in base mode. The
  /// base's sorted index, positions, and non-overridden objects are shared
  /// (reweights never change values, only probabilities).
  const Database* delta_base() const { return delta_base_; }

  /// Ids of objects with an override, ascending. Empty in base mode.
  std::vector<ObjectId> OverriddenObjects() const;

  /// Approximate resident bytes attributable to this delta: override
  /// objects + suffix masses + map nodes + the bulk view if some consumer
  /// forced it. Zero in base mode. Feeds the per-session memory gauge.
  int64_t DeltaBytes() const;

  // ---- Global sorted index (available after Finalize) ----

  /// All instances ascending by (value, oid, iid). In delta mode this
  /// materializes the O(m) bulk view on first use; see objects().
  const std::vector<Instance>& sorted_instances() const {
    if (delta_base_ == nullptr) [[likely]] return sorted_;
    EnsureBulk();
    return bulk_sorted_;
  }

  /// Global position of an instance.
  Position PositionOf(InstanceRef ref) const {
    if (delta_base_ != nullptr) return delta_base_->PositionOf(ref);
    return position_[offset_[ref.oid] + ref.iid];
  }

  /// Probability that object `oid` takes an instance with global position
  /// strictly greater than `pos` (i.e., ranks beyond the first pos+1
  /// sorted instances). Pass -1 for "any instance" (returns 1).
  double MassBeyond(ObjectId oid, Position pos) const;

  /// Probability that object `oid` takes an instance with global position
  /// strictly less than `pos` ("ranks above" the instance at pos).
  double MassBefore(ObjectId oid, Position pos) const;

 private:
  friend class DatabaseOverlay;
  friend class ptk::persist::CatalogIo;

  /// Creates a sparse delta over `base` (which must be finalized and not
  /// itself a delta). The caller must keep `base` alive and unmutated for
  /// the delta's lifetime. Only DatabaseOverlay constructs deltas.
  static Database MakeDelta(const Database& base);

  /// Delta-mode object resolution: override slot if present, else base.
  const UncertainObject& DeltaObject(ObjectId oid) const;

  /// Delta mode: returns (creating on first touch) the override for `oid`,
  /// seeded with a copy of the base object. Stored in a deque so existing
  /// object() references stay valid across later overrides.
  UncertainObject& EnsureOverride(ObjectId oid);

  /// Delta mode: recomputes the override's suffix masses from its instance
  /// probabilities — the same descending accumulation BuildIndex uses, so
  /// MassBeyond/MassBefore answers are bitwise identical to a full copy.
  void RefreshOverrideSuffix(ObjectId oid);

  /// Delta mode: (re)builds the bulk view — a full copy of the base arrays
  /// patched with every override — memoized on mutation_version().
  void EnsureBulk() const;

  /// Replaces object `oid`'s instance probabilities in place (values and
  /// instance count unchanged), renormalizing `probs` to sum exactly to 1.
  /// Probabilities may be zero — a zero-probability instance keeps its slot
  /// in the sorted index but carries no mass anywhere downstream. Only the
  /// object's own instances, their copies in the sorted index, and the
  /// object's suffix masses are touched: O(num_instances(oid)), independent
  /// of database size. Requires finalized(), probs.size() ==
  /// num_instances(oid), all probs >= 0, and a positive total.
  void ReweightObjectInPlace(ObjectId oid, const std::vector<double>& probs);

  /// Persist-restore variant: sets object `oid`'s probabilities *verbatim*
  /// (no renormalization) and refreshes the derived suffix masses. The
  /// inputs are probabilities a previous run's ReweightObjectInPlace
  /// produced, stored as exact bit patterns, so re-dividing by their
  /// not-exactly-1.0 sum would break the bit-identical recovery contract.
  /// Same preconditions as ReweightObjectInPlace otherwise.
  void SetObjectProbsInPlace(ObjectId oid, const std::vector<double>& probs);

  /// The index-construction half of Finalize(): rebuilds sorted_, offset_,
  /// position_, obj_positions_ and obj_suffix_mass_ from objects_ exactly
  /// as Finalize does, without validating or renormalizing. persist's
  /// catalog loader calls it after restoring objects_ with already-
  /// normalized probabilities, where Finalize's renormalization division
  /// could perturb the restored bits.
  void BuildIndex();

  bool finalized_ = false;
  uint64_t mutation_version_ = 0;
  std::vector<UncertainObject> objects_;

  // Sorted index, built by Finalize().
  std::vector<Instance> sorted_;
  std::vector<int> offset_;         // per object: start in position_
  std::vector<Position> position_;  // flat (oid,iid) -> global position
  // Per object: its instances' global positions ascending, and the suffix
  // probability mass starting at each of them.
  std::vector<std::vector<Position>> obj_positions_;
  std::vector<std::vector<double>> obj_suffix_mass_;

  // ---- Delta mode state (empty in base mode) ----
  const Database* delta_base_ = nullptr;
  std::unordered_map<ObjectId, int32_t> over_slot_;  // oid -> deque index
  std::deque<UncertainObject> over_objects_;
  std::deque<std::vector<double>> over_suffix_;
  // Lazy O(m) bulk view for objects()/sorted_instances() consumers;
  // bulk_version_ == 0 means unbuilt (mutation_version() is >= 1 once
  // finalized, so 0 never collides).
  mutable std::vector<UncertainObject> bulk_objects_;
  mutable std::vector<Instance> bulk_sorted_;
  mutable uint64_t bulk_version_ = 0;
};

}  // namespace ptk::model

#endif  // PTK_MODEL_DATABASE_H_
