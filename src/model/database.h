#ifndef PTK_MODEL_DATABASE_H_
#define PTK_MODEL_DATABASE_H_

#include <utility>
#include <vector>

#include "model/instance.h"
#include "model/uncertain_object.h"
#include "util/status.h"

namespace ptk::persist {
class CatalogIo;  // bit-exact Database (de)serialization, persist/catalog.cc
}

namespace ptk::model {

/// Global position of an instance in the database-wide (value, oid, iid)
/// ascending order; position 0 is the highest-ranked instance.
using Position = int32_t;

/// A probabilistic database: a set of independent uncertain objects under
/// possible-world semantics (Section 3.1). After Finalize() the database is
/// immutable and exposes a global value-sorted instance index used by the
/// top-k enumerator and the membership calculator. The only sanctioned
/// post-Finalize mutation is DatabaseOverlay's in-place marginal reweight,
/// which keeps every value (and therefore the sorted index) intact and
/// bumps mutation_version() so cached derived artifacts can detect
/// staleness (SelectorOptions::MembershipFor).
class Database {
 public:
  Database() = default;

  /// Adds an object from (value, probability) pairs and returns its id.
  /// Must be called before Finalize().
  ObjectId AddObject(std::vector<std::pair<double, double>> pairs,
                     std::string label = "");

  /// Validates every object (positive probabilities summing to 1 within
  /// `tolerance`, no duplicate values inside one object, at least one
  /// instance) and builds the sorted index. Probabilities are renormalized
  /// exactly to 1 so downstream math is numerically clean.
  util::Status Finalize(double tolerance = 1e-6);

  bool finalized() const { return finalized_; }

  /// Monotonic counter of state changes: bumped by Finalize() and by every
  /// in-place marginal reweight (DatabaseOverlay). Consumers that cache
  /// per-database artifacts (membership tables, PB-trees) record the
  /// version they were built against and treat a mismatch as stale.
  uint64_t mutation_version() const { return mutation_version_; }

  int num_objects() const { return static_cast<int>(objects_.size()); }
  int num_instances() const { return static_cast<int>(sorted_.size()); }

  const UncertainObject& object(ObjectId oid) const { return objects_[oid]; }
  const std::vector<UncertainObject>& objects() const { return objects_; }

  const Instance& instance(InstanceRef ref) const {
    return objects_[ref.oid].instance(ref.iid);
  }

  // ---- Global sorted index (available after Finalize) ----

  /// All instances ascending by (value, oid, iid).
  const std::vector<Instance>& sorted_instances() const { return sorted_; }

  /// Global position of an instance.
  Position PositionOf(InstanceRef ref) const {
    return position_[offset_[ref.oid] + ref.iid];
  }

  /// Probability that object `oid` takes an instance with global position
  /// strictly greater than `pos` (i.e., ranks beyond the first pos+1
  /// sorted instances). Pass -1 for "any instance" (returns 1).
  double MassBeyond(ObjectId oid, Position pos) const;

  /// Probability that object `oid` takes an instance with global position
  /// strictly less than `pos` ("ranks above" the instance at pos).
  double MassBefore(ObjectId oid, Position pos) const;

 private:
  friend class DatabaseOverlay;
  friend class ptk::persist::CatalogIo;

  /// Replaces object `oid`'s instance probabilities in place (values and
  /// instance count unchanged), renormalizing `probs` to sum exactly to 1.
  /// Probabilities may be zero — a zero-probability instance keeps its slot
  /// in the sorted index but carries no mass anywhere downstream. Only the
  /// object's own instances, their copies in the sorted index, and the
  /// object's suffix masses are touched: O(num_instances(oid)), independent
  /// of database size. Requires finalized(), probs.size() ==
  /// num_instances(oid), all probs >= 0, and a positive total.
  void ReweightObjectInPlace(ObjectId oid, const std::vector<double>& probs);

  /// Persist-restore variant: sets object `oid`'s probabilities *verbatim*
  /// (no renormalization) and refreshes the derived suffix masses. The
  /// inputs are probabilities a previous run's ReweightObjectInPlace
  /// produced, stored as exact bit patterns, so re-dividing by their
  /// not-exactly-1.0 sum would break the bit-identical recovery contract.
  /// Same preconditions as ReweightObjectInPlace otherwise.
  void SetObjectProbsInPlace(ObjectId oid, const std::vector<double>& probs);

  /// The index-construction half of Finalize(): rebuilds sorted_, offset_,
  /// position_, obj_positions_ and obj_suffix_mass_ from objects_ exactly
  /// as Finalize does, without validating or renormalizing. persist's
  /// catalog loader calls it after restoring objects_ with already-
  /// normalized probabilities, where Finalize's renormalization division
  /// could perturb the restored bits.
  void BuildIndex();

  bool finalized_ = false;
  uint64_t mutation_version_ = 0;
  std::vector<UncertainObject> objects_;

  // Sorted index, built by Finalize().
  std::vector<Instance> sorted_;
  std::vector<int> offset_;         // per object: start in position_
  std::vector<Position> position_;  // flat (oid,iid) -> global position
  // Per object: its instances' global positions ascending, and the suffix
  // probability mass starting at each of them.
  std::vector<std::vector<Position>> obj_positions_;
  std::vector<std::vector<double>> obj_suffix_mass_;
};

}  // namespace ptk::model

#endif  // PTK_MODEL_DATABASE_H_
