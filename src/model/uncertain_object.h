#ifndef PTK_MODEL_UNCERTAIN_OBJECT_H_
#define PTK_MODEL_UNCERTAIN_OBJECT_H_

#include <string>
#include <vector>

#include "model/instance.h"

namespace ptk::model {

/// An uncertain object: a set of mutually exclusive instances whose
/// probabilities sum to 1 (the x-tuple of the x-tuple model). Instances are
/// stored sorted ascending by value; iid equals the index in that order.
class UncertainObject {
 public:
  UncertainObject() = default;

  /// Builds an object from (value, probability) pairs. The Database is the
  /// usual entry point (it assigns ids and validates); this constructor is
  /// exposed for pseudo-objects and tests. Pairs are sorted by value and
  /// iids assigned; no validation is performed here.
  UncertainObject(ObjectId id, std::vector<std::pair<double, double>> pairs);

  ObjectId id() const { return id_; }
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  int num_instances() const { return static_cast<int>(instances_.size()); }
  const std::vector<Instance>& instances() const { return instances_; }
  const Instance& instance(InstanceId iid) const { return instances_[iid]; }

  /// Sum of instance probabilities (1 for a valid object; pseudo bound
  /// objects always rebuild to exactly 1 by construction).
  double TotalProb() const;

  /// E[value] — the clustering metric ingredient of Eq. 17.
  double ExpectedValue() const;

  /// Probability that this object's value is strictly below `x` under the
  /// instance total order (InstanceLess). `x` may belong to any object.
  double MassLess(const Instance& x) const;

  /// Probability that this object's value is strictly above `x` under the
  /// instance total order.
  double MassGreater(const Instance& x) const;

  /// Probability mass of instances with raw value < v (ties excluded) —
  /// used by the value-based dominance test (Definition 4).
  double MassValueBelow(double v) const;

  /// Probability mass of instances with raw value > v (ties excluded).
  double MassValueAbove(double v) const;

 private:
  friend class Database;

  ObjectId id_ = kInvalidObject;
  std::string label_;
  std::vector<Instance> instances_;  // ascending by (value, oid, iid)
};

}  // namespace ptk::model

#endif  // PTK_MODEL_UNCERTAIN_OBJECT_H_
