#include "model/instance.h"

// Instance is a passive struct with inline helpers; this translation unit
// anchors the header in the build.
