#include "model/uncertain_object.h"

#include <algorithm>

namespace ptk::model {

UncertainObject::UncertainObject(ObjectId id,
                                 std::vector<std::pair<double, double>> pairs)
    : id_(id) {
  std::sort(pairs.begin(), pairs.end());
  instances_.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    instances_.push_back(Instance{id, static_cast<InstanceId>(i),
                                  pairs[i].first, pairs[i].second});
  }
}

double UncertainObject::TotalProb() const {
  double total = 0.0;
  for (const Instance& i : instances_) total += i.prob;
  return total;
}

double UncertainObject::ExpectedValue() const {
  double total = 0.0;
  for (const Instance& i : instances_) total += i.value * i.prob;
  return total;
}

double UncertainObject::MassLess(const Instance& x) const {
  double total = 0.0;
  for (const Instance& i : instances_) {
    if (!InstanceLess(i, x)) break;  // instances_ sorted by the same order
    total += i.prob;
  }
  return total;
}

double UncertainObject::MassGreater(const Instance& x) const {
  double total = 0.0;
  for (auto it = instances_.rbegin(); it != instances_.rend(); ++it) {
    if (!InstanceLess(x, *it)) break;
    total += it->prob;
  }
  return total;
}

double UncertainObject::MassValueBelow(double v) const {
  double total = 0.0;
  for (const Instance& i : instances_) {
    if (i.value >= v) break;
    total += i.prob;
  }
  return total;
}

double UncertainObject::MassValueAbove(double v) const {
  double total = 0.0;
  for (auto it = instances_.rbegin(); it != instances_.rend(); ++it) {
    if (it->value <= v) break;
    total += it->prob;
  }
  return total;
}

}  // namespace ptk::model
