#ifndef PTK_MODEL_INSTANCE_H_
#define PTK_MODEL_INSTANCE_H_

#include <cstdint>

namespace ptk::model {

/// Identifier of an uncertain object: its index in the owning Database.
using ObjectId = int32_t;

/// Identifier of an instance within its object: its index in the object's
/// value-sorted instance list.
using InstanceId = int32_t;

constexpr ObjectId kInvalidObject = -1;

/// One probabilistic instance <oid, iid, v, p> of an uncertain object
/// (Section 3.1). Instances of the same object are mutually exclusive and
/// their probabilities sum to 1.
struct Instance {
  ObjectId oid = kInvalidObject;
  InstanceId iid = -1;
  double value = 0.0;
  double prob = 0.0;
};

/// Total order over instances used everywhere ranking matters: ascending
/// value, ties broken by (oid, iid). The paper assumes no two instances
/// share a value; real rating data (e.g., IMDB) violates that, so the
/// library instead fixes one deterministic total order and uses it
/// consistently in the exact oracle, the enumerator, and the membership
/// calculator. Under this order "smaller ranks higher" exactly as in the
/// paper.
inline bool InstanceLess(const Instance& a, const Instance& b) {
  if (a.value != b.value) return a.value < b.value;
  if (a.oid != b.oid) return a.oid < b.oid;
  return a.iid < b.iid;
}

inline bool InstanceGreater(const Instance& a, const Instance& b) {
  return InstanceLess(b, a);
}

/// A compact reference to an instance inside a Database.
struct InstanceRef {
  ObjectId oid = kInvalidObject;
  InstanceId iid = -1;

  friend bool operator==(const InstanceRef&, const InstanceRef&) = default;
};

}  // namespace ptk::model

#endif  // PTK_MODEL_INSTANCE_H_
