#ifndef PTK_CROWD_AGGREGATION_H_
#define PTK_CROWD_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "model/instance.h"
#include "util/status.h"

namespace ptk::crowd {

/// Conflict resolution for crowdsourced comparison tasks (the mechanism
/// Fig. 2 assumes "is in place"; quality control per the Section 2.1
/// related work [16], [3]). Workers vote on pairs; an aggregator collapses
/// the votes into one deterministic verdict per pair, optionally learning
/// per-worker reliabilities from the vote matrix itself.

/// One worker's vote on one task: does the first object of the pair have
/// the greater value?
struct Vote {
  int task = -1;    // index into the task list
  int worker = -1;  // worker id, dense from 0
  bool first_greater = false;
};

/// A comparison task posted to the crowd.
struct ComparisonTask {
  model::ObjectId a = model::kInvalidObject;
  model::ObjectId b = model::kInvalidObject;
};

/// The aggregated outcome of one task.
struct AggregatedAnswer {
  bool first_greater = false;
  /// Posterior confidence in the verdict (0.5 = coin flip).
  double confidence = 0.5;
  int votes = 0;
};

/// Simple majority voting, ties broken toward the lexicographically
/// smaller verdict (deterministic). Confidence is the vote fraction.
std::vector<AggregatedAnswer> MajorityVote(
    const std::vector<ComparisonTask>& tasks, const std::vector<Vote>& votes);

/// Joint estimation of per-worker accuracies and task verdicts by
/// expectation-maximization (a one-coin Dawid-Skene model): each worker w
/// answers any task correctly with unknown probability acc_w; E-step
/// computes verdict posteriors from the current accuracies, M-step
/// re-estimates accuracies from the posteriors. Majority voting
/// initializes the posteriors.
struct EmOptions {
  int max_iterations = 50;
  double tolerance = 1e-9;    // stop when accuracies move less than this
  double prior_accuracy = 0.7;  // pseudo-count prior, keeps estimates off
  double prior_strength = 2.0;  // the 0/1 boundary for sparse workers
};

struct EmResult {
  std::vector<AggregatedAnswer> answers;       // per task
  std::vector<double> worker_accuracy;         // per worker
  int iterations = 0;
};

/// Runs EM over the vote matrix. Fails if a task has no votes or the vote
/// matrix is empty.
util::Status EmAggregate(const std::vector<ComparisonTask>& tasks,
                         const std::vector<Vote>& votes,
                         const EmOptions& options, EmResult* out);

}  // namespace ptk::crowd

#endif  // PTK_CROWD_AGGREGATION_H_
