#include "crowd/crowd_model.h"

#include <algorithm>
#include <cmath>

#include "rank/pairwise_prob.h"

namespace ptk::crowd {

double BiasedCrowd::RealProb(model::ObjectId x, model::ObjectId y) const {
  const double p = rank::ProbGreater(db_->object(x), db_->object(y));
  if (p > 0.5) return std::min(1.0, p + theta_);
  if (p < 0.5) return std::max(0.0, p - theta_);
  return p;
}

std::vector<double> SampleWorldValues(const model::Database& db,
                                      uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> values;
  values.reserve(db.num_objects());
  for (const auto& obj : db.objects()) {
    double u = rng.Uniform();
    double value = obj.instances().back().value;
    for (const auto& inst : obj.instances()) {
      if (u < inst.prob) {
        value = inst.value;
        break;
      }
      u -= inst.prob;
    }
    values.push_back(value);
  }
  return values;
}

bool WorkerPanel::Compare(model::ObjectId x, model::ObjectId y) {
  const bool truth = truth_[x] != truth_[y] ? truth_[x] > truth_[y] : x > y;
  int votes_for_truth = 0;
  for (int w = 0; w < workers_; ++w) {
    if (rng_.Bernoulli(accuracy_)) ++votes_for_truth;
  }
  // Ties (even panels) resolved toward the truth half the time.
  const int against = workers_ - votes_for_truth;
  bool majority_truth;
  if (votes_for_truth != against) {
    majority_truth = votes_for_truth > against;
  } else {
    majority_truth = rng_.Bernoulli(0.5);
  }
  return majority_truth ? truth : !truth;
}

double WorkerPanel::MajorityAccuracy() const {
  // Binomial tail: P(more than half of the workers answer correctly),
  // counting half of the tie probability for even panels.
  double total = 0.0;
  double tie = 0.0;
  // P(X = j) for X ~ Binomial(workers_, accuracy_).
  std::vector<double> pmf(workers_ + 1, 0.0);
  pmf[0] = 1.0;
  for (int w = 0; w < workers_; ++w) {
    for (int j = w + 1; j >= 1; --j) {
      pmf[j] = pmf[j] * (1.0 - accuracy_) + pmf[j - 1] * accuracy_;
    }
    pmf[0] *= (1.0 - accuracy_);
  }
  for (int j = 0; j <= workers_; ++j) {
    if (2 * j > workers_) total += pmf[j];
    if (2 * j == workers_) tie += pmf[j];
  }
  return total + 0.5 * tie;
}

}  // namespace ptk::crowd
