#include "crowd/adaptive.h"

#include <algorithm>
#include <cassert>

#include "core/bound_selector.h"

namespace ptk::crowd {

namespace {

// Rebuilds a database with two objects' instance probabilities replaced.
model::Database Reweighted(const model::Database& db, model::ObjectId a,
                           const std::vector<double>& pa, model::ObjectId b,
                           const std::vector<double>& pb) {
  model::Database out;
  for (const auto& obj : db.objects()) {
    std::vector<std::pair<double, double>> pairs;
    const std::vector<double>* repl =
        obj.id() == a ? &pa : (obj.id() == b ? &pb : nullptr);
    for (const auto& inst : obj.instances()) {
      const double p = repl != nullptr ? (*repl)[inst.iid] : inst.prob;
      if (p > 0.0) pairs.emplace_back(inst.value, p);
    }
    out.AddObject(std::move(pairs), obj.label());
  }
  const util::Status s = out.Finalize();
  assert(s.ok());  // normalized positive probabilities cannot fail
  (void)s;
  return out;
}

}  // namespace

AdaptiveCleaner::AdaptiveCleaner(const model::Database& db,
                                 ComparisonOracle* oracle,
                                 const Options& options)
    : original_(&db),
      oracle_(oracle),
      options_(options),
      evaluator_(db, options.k, options.order, options.enumerator) {
  // The working database starts as a copy of the original.
  working_ = Reweighted(db, model::kInvalidObject, {}, model::kInvalidObject,
                        {});
}

util::Status AdaptiveCleaner::Init() {
  if (initialized_) return util::Status::OK();
  double h = 0.0;
  const util::Status s = evaluator_.Quality(nullptr, &h);
  if (!s.ok()) return s.WithContext("AdaptiveCleaner::Init: H(S_k)");
  initial_quality_ = h;
  initialized_ = true;
  return util::Status::OK();
}

bool AdaptiveCleaner::FoldIn(model::ObjectId smaller,
                             model::ObjectId larger) {
  const auto& so = working_.object(smaller);
  const auto& lo = working_.object(larger);
  // p'_smaller(i) ∝ p(i) · Pr(larger > i); p'_larger(j) ∝ p(j) ·
  // Pr(smaller < j); both with pre-update marginals.
  std::vector<double> ps(so.num_instances());
  std::vector<double> pl(lo.num_instances());
  double total_s = 0.0, total_l = 0.0;
  for (const auto& inst : so.instances()) {
    ps[inst.iid] = inst.prob * lo.MassGreater(inst);
    total_s += ps[inst.iid];
  }
  for (const auto& inst : lo.instances()) {
    pl[inst.iid] = inst.prob * so.MassLess(inst);
    total_l += pl[inst.iid];
  }
  if (total_s <= 0.0 || total_l <= 0.0) return false;
  for (double& p : ps) p /= total_s;
  for (double& p : pl) p /= total_l;
  working_ = Reweighted(working_, smaller, ps, larger, pl);
  return true;
}

util::Status AdaptiveCleaner::Run(int budget,
                                  std::vector<StepReport>* steps) {
  if (!initialized_) {
    return util::Status::FailedPrecondition(
        "AdaptiveCleaner::Run called without a successful Init()");
  }
  steps->clear();
  for (int step = 0; step < budget; ++step) {
    core::SelectorOptions sel_options;
    sel_options.k = options_.k;
    sel_options.order = options_.order;
    sel_options.fanout = options_.fanout;
    sel_options.enumerator = options_.enumerator;
    core::BoundSelector selector(working_, sel_options,
                                 core::BoundSelector::Mode::kOptimized);
    // Over-request so previously asked pairs can be skipped. Note: working
    // databases may drop zero-probability instances but never objects, so
    // object ids are stable across folds.
    std::vector<core::ScoredPair> candidates;
    util::Status s = selector.SelectPairs(
        static_cast<int>(asked_.size()) + 1, &candidates);
    if (!s.ok()) return s;
    const core::ScoredPair* chosen = nullptr;
    for (const auto& pair : candidates) {
      const auto key = std::minmax(pair.a, pair.b);
      if (!asked_.contains({key.first, key.second})) {
        chosen = &pair;
        break;
      }
    }
    if (chosen == nullptr) {
      return util::Status::ResourceExhausted(
          "no unasked pair left in the selector's stream");
    }

    StepReport report;
    report.pair = *chosen;
    const auto key = std::minmax(chosen->a, chosen->b);
    asked_.insert({key.first, key.second});
    report.first_greater = oracle_->Compare(chosen->a, chosen->b);
    const model::ObjectId smaller =
        report.first_greater ? chosen->b : chosen->a;
    const model::ObjectId larger =
        report.first_greater ? chosen->a : chosen->b;

    // Accept the answer only if it is consistent with the accepted set
    // (same rule as CleaningSession).
    pw::ConstraintSet candidate = constraints_;
    candidate.Add(smaller, larger);
    if (evaluator_.ConstraintProbability(candidate) > 0.0 &&
        FoldIn(smaller, larger)) {
      constraints_ = std::move(candidate);
      report.applied = true;
    }

    double h = 0.0;
    s = evaluator_.Quality(constraints_.empty() ? nullptr : &constraints_,
                           &h);
    if (!s.ok()) return s;
    report.true_quality = h;
    steps->push_back(std::move(report));
  }
  return util::Status::OK();
}

}  // namespace ptk::crowd
