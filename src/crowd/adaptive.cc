#include "crowd/adaptive.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ptk::crowd {

namespace {

engine::RankingEngine::Options EngineOptions(
    const AdaptiveCleaner::Options& options) {
  engine::RankingEngine::Options engine_options;
  engine_options.k = options.k;
  engine_options.order = options.order;
  engine_options.enumerator = options.enumerator;
  engine_options.fanout = options.fanout;
  engine_options.semantics = options.semantics;
  return engine_options;
}

}  // namespace

AdaptiveCleaner::AdaptiveCleaner(const model::Database& db,
                                 ComparisonOracle* oracle,
                                 const Options& options)
    : oracle_(oracle),
      options_(options),
      engine_(db, EngineOptions(options)) {}

util::Status AdaptiveCleaner::Init() {
  if (initialized_) return util::Status::OK();
  // Every step folds with update_working, so materialize the working copy
  // up front: the selection artifacts then build once on the private copy
  // and are refreshed per-object by each fold, instead of being discarded
  // when the first fold forces the copy into existence.
  engine_.PrepareWorkingCopy();
  const util::StatusOr<double> h = engine_.Quality();
  if (!h.ok()) {
    return h.status().WithContext("AdaptiveCleaner::Init: H(S_k)");
  }
  initial_quality_ = *h;
  initialized_ = true;
  return util::Status::OK();
}

util::StatusOr<std::vector<AdaptiveCleaner::StepReport>> AdaptiveCleaner::Run(
    int budget) {
  if (!initialized_) {
    return util::Status::FailedPrecondition(
        "AdaptiveCleaner::Run called without a successful Init()");
  }
  static obs::Histogram* const step_seconds =
      obs::GetHistogram("ptk_adaptive_step_seconds",
                        "Latency of one AdaptiveCleaner select-ask-fold step");
  static obs::Counter* const steps_run = obs::GetCounter(
      "ptk_adaptive_steps_total", "Adaptive select-ask-fold steps completed");
  static obs::Counter* const steps_contradictory = obs::GetCounter(
      "ptk_adaptive_steps_contradictory_total",
      "Adaptive steps whose answer was discarded as inconsistent");
  std::vector<StepReport> steps;
  for (int step = 0; step < budget; ++step) {
    obs::Span span("AdaptiveCleaner::Step");
    obs::ScopedTimer step_timer(step_seconds);
    // A fresh selector per step borrows the engine's incrementally
    // maintained membership calculator and PB-tree, so construction does
    // not re-scan or re-index the untouched objects.
    std::unique_ptr<core::PairSelector> selector =
        engine_.MakeSelector(engine::SelectorKind::kOpt);
    // Over-request so previously asked pairs can be skipped. Object ids
    // are stable across folds: the overlay reweights marginals in place
    // and never drops objects.
    std::vector<core::ScoredPair> candidates;
    util::Status s = selector->SelectPairs(
        static_cast<int>(asked_.size()) + 1, &candidates);
    if (!s.ok()) return s;
    const core::ScoredPair* chosen = nullptr;
    for (const auto& pair : candidates) {
      const auto key = std::minmax(pair.a, pair.b);
      if (!asked_.contains({key.first, key.second})) {
        chosen = &pair;
        break;
      }
    }
    if (chosen == nullptr) {
      return util::Status::ResourceExhausted(
          "no unasked pair left in the selector's stream");
    }

    StepReport report;
    report.pair = *chosen;
    const auto key = std::minmax(chosen->a, chosen->b);
    asked_.insert({key.first, key.second});
    report.first_greater = oracle_->Compare(chosen->a, chosen->b);
    const model::ObjectId smaller =
        report.first_greater ? chosen->b : chosen->a;
    const model::ObjectId larger =
        report.first_greater ? chosen->a : chosen->b;

    // Accept the answer only if it is consistent with the accepted set
    // (same rule as CleaningSession) and the marginal fold is
    // non-degenerate; the engine then updates the two objects in place.
    engine::RankingEngine::FoldOutcome outcome;
    s = engine_.Fold(smaller, larger, /*update_working=*/true, &outcome);
    if (!s.ok()) return s;
    report.applied =
        outcome == engine::RankingEngine::FoldOutcome::kApplied;
    steps_run->Add();
    if (!report.applied) steps_contradictory->Add();

    const util::StatusOr<double> h = engine_.Quality();
    if (!h.ok()) return h.status();
    report.true_quality = *h;
    steps.push_back(std::move(report));
  }
  return steps;
}

}  // namespace ptk::crowd
