#ifndef PTK_CROWD_CROWD_MODEL_H_
#define PTK_CROWD_CROWD_MODEL_H_

#include <span>
#include <vector>

#include "model/database.h"
#include "util/rng.h"

namespace ptk::crowd {

/// A source of resolved pairwise comparisons (Fig. 2's "crowd of domain
/// experts" after conflict resolution): Compare(x, y) answers whether the
/// crowd asserts value(x) > value(y). Deterministic per call pair given the
/// seed, as the paper assumes a conflict-resolution mechanism (e.g.,
/// majority voting) collapses worker answers into one verdict.
class ComparisonOracle {
 public:
  virtual ~ComparisonOracle() = default;
  virtual bool Compare(model::ObjectId x, model::ObjectId y) = 0;
};

/// Answers from hidden ground-truth values (a perfectly reliable expert).
class GroundTruthOracle : public ComparisonOracle {
 public:
  explicit GroundTruthOracle(std::vector<double> truth)
      : truth_(std::move(truth)) {}

  bool Compare(model::ObjectId x, model::ObjectId y) override {
    if (truth_[x] != truth_[y]) return truth_[x] > truth_[y];
    return x > y;  // deterministic tie-break, consistent with the total order
  }

 private:
  std::vector<double> truth_;
};

/// The paper's simulation model (Eq. 19): the crowd answers "x > y" with
/// probability P_real — the data's own P(x > y) pushed away from 0.5 by the
/// bias θ measured on Amazon Mechanical Turk (0.19 in the paper).
class BiasedCrowd : public ComparisonOracle {
 public:
  BiasedCrowd(const model::Database& db, double theta, uint64_t seed)
      : db_(&db), theta_(theta), rng_(seed) {}

  /// P_real of Eq. 19 for the pair (x, y).
  double RealProb(model::ObjectId x, model::ObjectId y) const;

  bool Compare(model::ObjectId x, model::ObjectId y) override {
    return rng_.Bernoulli(RealProb(x, y));
  }

 private:
  const model::Database* db_;
  double theta_;
  util::Rng rng_;
};

/// Draws one possible world and returns its values, indexed by ObjectId.
/// Useful as a *realizable* ground truth for oracles: answers derived from
/// one world are always jointly consistent, whereas answers derived from,
/// say, expected values can contradict each other across pairs.
std::vector<double> SampleWorldValues(const model::Database& db,
                                      uint64_t seed);

/// A panel of `workers` independent workers, each comparing correctly
/// against the ground truth with probability `accuracy`; the verdict is the
/// majority vote — the Section 6.2 AMT protocol (10 workers a pair).
class WorkerPanel : public ComparisonOracle {
 public:
  WorkerPanel(std::vector<double> truth, int workers, double accuracy,
              uint64_t seed)
      : truth_(std::move(truth)),
        workers_(workers),
        accuracy_(accuracy),
        rng_(seed) {}

  bool Compare(model::ObjectId x, model::ObjectId y) override;

  /// Probability that the majority vote is correct (useful for Table 2
  /// style accuracy accounting).
  double MajorityAccuracy() const;

 private:
  std::vector<double> truth_;
  int workers_;
  double accuracy_;
  util::Rng rng_;
};

}  // namespace ptk::crowd

#endif  // PTK_CROWD_CROWD_MODEL_H_
