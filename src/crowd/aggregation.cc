#include "crowd/aggregation.h"

#include <algorithm>
#include <cmath>

namespace ptk::crowd {

std::vector<AggregatedAnswer> MajorityVote(
    const std::vector<ComparisonTask>& tasks,
    const std::vector<Vote>& votes) {
  std::vector<int> yes(tasks.size(), 0);
  std::vector<int> total(tasks.size(), 0);
  for (const Vote& v : votes) {
    if (v.task < 0 || v.task >= static_cast<int>(tasks.size())) continue;
    ++total[v.task];
    if (v.first_greater) ++yes[v.task];
  }
  std::vector<AggregatedAnswer> out(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    AggregatedAnswer& a = out[t];
    a.votes = total[t];
    if (total[t] == 0) continue;  // stays at the 0.5 default
    a.first_greater = 2 * yes[t] > total[t];
    const int winner = std::max(yes[t], total[t] - yes[t]);
    a.confidence = static_cast<double>(winner) / total[t];
  }
  return out;
}

util::Status EmAggregate(const std::vector<ComparisonTask>& tasks,
                         const std::vector<Vote>& votes,
                         const EmOptions& options, EmResult* out) {
  if (tasks.empty() || votes.empty()) {
    return util::Status::InvalidArgument("no tasks or votes");
  }
  int num_workers = 0;
  std::vector<int> votes_per_task(tasks.size(), 0);
  for (const Vote& v : votes) {
    if (v.task < 0 || v.task >= static_cast<int>(tasks.size()) ||
        v.worker < 0) {
      return util::Status::InvalidArgument("vote references unknown task "
                                           "or worker");
    }
    num_workers = std::max(num_workers, v.worker + 1);
    ++votes_per_task[v.task];
  }
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (votes_per_task[t] == 0) {
      return util::Status::InvalidArgument(
          "task " + std::to_string(t) + " received no votes");
    }
  }

  // Posterior P(task verdict = first_greater), initialized from majority.
  std::vector<double> posterior(tasks.size(), 0.5);
  {
    const auto majority = MajorityVote(tasks, votes);
    for (size_t t = 0; t < tasks.size(); ++t) {
      const double conf = majority[t].confidence;
      posterior[t] = majority[t].first_greater ? conf : 1.0 - conf;
    }
  }
  std::vector<double> accuracy(num_workers, options.prior_accuracy);

  EmResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    // M-step: accuracy_w = P(worker's vote matches the verdict), with a
    // Beta-like prior of strength prior_strength at prior_accuracy.
    std::vector<double> agree(num_workers,
                              options.prior_accuracy *
                                  options.prior_strength);
    std::vector<double> count(num_workers, options.prior_strength);
    for (const Vote& v : votes) {
      const double p_yes = posterior[v.task];
      agree[v.worker] += v.first_greater ? p_yes : 1.0 - p_yes;
      count[v.worker] += 1.0;
    }
    double max_move = 0.0;
    for (int w = 0; w < num_workers; ++w) {
      const double updated =
          std::clamp(agree[w] / count[w], 0.01, 0.99);
      max_move = std::max(max_move, std::abs(updated - accuracy[w]));
      accuracy[w] = updated;
    }

    // E-step: verdict posteriors from worker accuracies (uniform verdict
    // prior; votes independent given the verdict).
    std::vector<double> log_yes(tasks.size(), 0.0);
    std::vector<double> log_no(tasks.size(), 0.0);
    for (const Vote& v : votes) {
      const double acc = accuracy[v.worker];
      if (v.first_greater) {
        log_yes[v.task] += std::log(acc);
        log_no[v.task] += std::log(1.0 - acc);
      } else {
        log_yes[v.task] += std::log(1.0 - acc);
        log_no[v.task] += std::log(acc);
      }
    }
    for (size_t t = 0; t < tasks.size(); ++t) {
      const double m = std::max(log_yes[t], log_no[t]);
      const double ey = std::exp(log_yes[t] - m);
      const double en = std::exp(log_no[t] - m);
      posterior[t] = ey / (ey + en);
    }
    if (max_move < options.tolerance) break;
  }

  result.answers.resize(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    AggregatedAnswer& a = result.answers[t];
    a.votes = votes_per_task[t];
    a.first_greater = posterior[t] >= 0.5;
    a.confidence = a.first_greater ? posterior[t] : 1.0 - posterior[t];
  }
  result.worker_accuracy = std::move(accuracy);
  *out = std::move(result);
  return util::Status::OK();
}

}  // namespace ptk::crowd
