#ifndef PTK_CROWD_SESSION_H_
#define PTK_CROWD_SESSION_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/selector.h"
#include "core/semantics.h"
#include "crowd/crowd_model.h"
#include "engine/ranking_engine.h"
#include "pw/constraint.h"
#include "util/statusor.h"

namespace ptk::crowd {

/// One end-to-end uncertainty-reduction loop (Fig. 2): select object pairs
/// under the quota, post them to the crowd, fold the answers into the
/// constraint set, and track the realized quality H(S_k | answers) round
/// by round. Selection operates on the original database (the paper's
/// batch model); already-asked pairs are never re-posted.
///
/// Constraint accumulation, contradiction handling, and the exact
/// conditioned evaluation all live in the shared engine::RankingEngine;
/// the session adds the quota/round loop and the asked-pair bookkeeping.
/// Quality and CurrentDistribution are memoized behind the engine's
/// constraint-set version counter, so repeated reads between rounds cost
/// one enumeration total (observable via engine().counters()).
///
/// Lifecycle: construct, then call Init() and check its Status before the
/// first round. Init() evaluates the prior quality H(S_k); a failure there
/// (k out of range, enumeration budget exceeded, ...) is a real error and
/// is returned — never swallowed into a fake initial quality of 0.
class CleaningSession {
 public:
  struct Options {
    int k = 10;
    pw::OrderMode order = pw::OrderMode::kInsensitive;
    pw::EnumeratorOptions enumerator;
    /// Ranking objective the session reports and minimizes. The default
    /// (entropy over top-k sets) reproduces the paper's quality metric;
    /// other semantics reuse the same round loop unchanged.
    core::SemanticsId semantics = core::SemanticsId::kEntropy;
  };

  CleaningSession(const model::Database& db, core::PairSelector* selector,
                  ComparisonOracle* oracle, const Options& options);

  /// Evaluates the prior quality H(S_k). Must succeed before RunRound;
  /// calling RunRound without a successful Init() fails with
  /// FailedPrecondition. Idempotent.
  util::Status Init();

  struct RoundReport {
    std::vector<core::ScoredPair> selected;
    std::vector<pw::PairwiseConstraint> answers;
    /// Answers that contradicted the already-accepted constraint set (zero
    /// surviving possible worlds) and were therefore discarded — the
    /// conflict-resolution behaviour of Fig. 2's server.
    std::vector<pw::PairwiseConstraint> skipped;
    /// One human-readable diagnosis per skipped answer, including the
    /// accepted constraint chain it conflicts with when one exists.
    std::vector<std::string> skip_reasons;
    double quality_before = 0.0;
    double quality_after = 0.0;

    double improvement() const { return quality_before - quality_after; }
  };

  /// Runs one round with the given quota. The selector is re-queried with
  /// an escalating request size until the quota is met or the selector's
  /// pair stream is genuinely exhausted, in which case the round fails
  /// with ResourceExhausted (describing how many unasked pairs remain).
  util::StatusOr<RoundReport> RunRound(int quota);

  /// H(S_k) before any crowdsourcing. Valid after a successful Init().
  double initial_quality() const { return initial_quality_; }

  /// All accumulated comparison outcomes.
  const pw::ConstraintSet& constraints() const {
    return engine_.constraints();
  }

  /// The current conditioned top-k distribution (memoized: repeated calls
  /// between rounds serve the engine's cache instead of re-enumerating).
  util::StatusOr<pw::TopKDistribution> CurrentDistribution() const {
    return engine_.Distribution();
  }

  /// The underlying conditioning engine, exposed for observability
  /// (memoization counters) and advanced consumers.
  const engine::RankingEngine& engine() const { return engine_; }

 private:
  const model::Database* db_;
  core::PairSelector* selector_;
  ComparisonOracle* oracle_;
  Options options_;
  engine::RankingEngine engine_;
  std::set<std::pair<model::ObjectId, model::ObjectId>> asked_;
  bool initialized_ = false;
  double initial_quality_ = 0.0;
  double current_quality_ = 0.0;
};

}  // namespace ptk::crowd

#endif  // PTK_CROWD_SESSION_H_
