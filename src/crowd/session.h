#ifndef PTK_CROWD_SESSION_H_
#define PTK_CROWD_SESSION_H_

#include <set>
#include <utility>
#include <vector>

#include "core/quality.h"
#include "core/selector.h"
#include "crowd/crowd_model.h"
#include "pw/constraint.h"

namespace ptk::crowd {

/// One end-to-end uncertainty-reduction loop (Fig. 2): select object pairs
/// under the quota, post them to the crowd, fold the answers into the
/// constraint set, and track the realized quality H(S_k | answers) round
/// by round. Selection operates on the original database (the paper's
/// batch model); already-asked pairs are never re-posted.
class CleaningSession {
 public:
  struct Options {
    int k = 10;
    pw::OrderMode order = pw::OrderMode::kInsensitive;
    pw::EnumeratorOptions enumerator;
  };

  CleaningSession(const model::Database& db, core::PairSelector* selector,
                  ComparisonOracle* oracle, const Options& options);

  struct RoundReport {
    std::vector<core::ScoredPair> selected;
    std::vector<pw::PairwiseConstraint> answers;
    /// Answers that contradicted the already-accepted constraint set (zero
    /// surviving possible worlds) and were therefore discarded — the
    /// conflict-resolution behaviour of Fig. 2's server.
    std::vector<pw::PairwiseConstraint> skipped;
    double quality_before = 0.0;
    double quality_after = 0.0;

    double improvement() const { return quality_before - quality_after; }
  };

  /// Runs one round with the given quota. Fails with ResourceExhausted if
  /// the selector cannot produce enough unasked pairs.
  util::Status RunRound(int quota, RoundReport* report);

  /// H(S_k) before any crowdsourcing.
  double initial_quality() const { return initial_quality_; }

  /// All accumulated comparison outcomes.
  const pw::ConstraintSet& constraints() const { return constraints_; }

  /// The current conditioned top-k distribution.
  util::Status CurrentDistribution(pw::TopKDistribution* out) const {
    return evaluator_.Distribution(
        constraints_.empty() ? nullptr : &constraints_, out);
  }

 private:
  const model::Database* db_;
  core::PairSelector* selector_;
  ComparisonOracle* oracle_;
  Options options_;
  core::QualityEvaluator evaluator_;
  pw::ConstraintSet constraints_;
  std::set<std::pair<model::ObjectId, model::ObjectId>> asked_;
  double initial_quality_ = 0.0;
  double current_quality_ = 0.0;
};

}  // namespace ptk::crowd

#endif  // PTK_CROWD_SESSION_H_
