#ifndef PTK_CROWD_ADAPTIVE_H_
#define PTK_CROWD_ADAPTIVE_H_

#include <set>
#include <vector>

#include "core/selector.h"
#include "core/semantics.h"
#include "crowd/crowd_model.h"
#include "engine/ranking_engine.h"
#include "model/database.h"
#include "pw/constraint.h"
#include "util/statusor.h"

namespace ptk::crowd {

/// Adaptive sequential cleaning: after every crowd answer the *next* pair
/// is selected against the information already gained, instead of fixing
/// the whole batch up front (the paper's multi-quota model trades this
/// away for latency; this class explores the other end of the spectrum).
///
/// Exact re-selection would need the selection machinery (membership,
/// PB-tree bounds) under arbitrary constraint sets, which breaks their
/// factorization. Instead each answer is folded into the engine's
/// *working database* by updating the two objects' marginals:
///   after "y < x":  p'_x(i) ∝ p_x(i) · Pr_y(y < i),
///                   p'_y(j) ∝ p_y(j) · Pr_x(x > j),
/// both with the pre-update marginals. This drops the cross-object
/// correlation the constraint induces (documented approximation), but
/// keeps every selector applicable unchanged. Realized quality is always
/// reported against the *exact* conditioned distribution of the original
/// database with all answers as constraints.
///
/// The fold is engine::RankingEngine::Fold with update_working: a
/// copy-on-write overlay reweights just the two objects in place, and the
/// shared membership calculator and PB-tree are refreshed per object —
/// per-step maintenance cost is independent of how many untouched objects
/// the database holds (the pre-engine implementation rebuilt the entire
/// working database after every answer).
class AdaptiveCleaner {
 public:
  struct Options {
    int k = 10;
    pw::OrderMode order = pw::OrderMode::kInsensitive;
    pw::EnumeratorOptions enumerator;
    int fanout = 8;
    /// Ranking objective every step minimizes. Non-entropy semantics make
    /// the per-step selector rescore its candidate pool by that
    /// objective's expected improvement (see core::RescoredSelector).
    core::SemanticsId semantics = core::SemanticsId::kEntropy;
  };

  AdaptiveCleaner(const model::Database& db, ComparisonOracle* oracle,
                  const Options& options);

  /// Evaluates the prior quality H(S_k). Must succeed before Run; calling
  /// Run without a successful Init() fails with FailedPrecondition.
  /// Idempotent. (Same contract as CleaningSession::Init — constructor
  /// failures are surfaced, never folded into initial_quality() == 0.)
  util::Status Init();

  struct StepReport {
    core::ScoredPair pair;
    bool first_greater = false;  // the crowd's verdict: value(a) > value(b)
    bool applied = false;        // false if contradictory and discarded
    double true_quality = 0.0;   // H(S_k | all accepted answers), exact
  };

  /// Runs `budget` sequential steps. Each step: select the best pair on
  /// the current working database (OPT selector over the engine's shared
  /// artifacts), ask the oracle, fold the answer in, and evaluate the
  /// exact conditioned quality.
  util::StatusOr<std::vector<StepReport>> Run(int budget);

  /// Valid after a successful Init().
  double initial_quality() const { return initial_quality_; }
  const pw::ConstraintSet& constraints() const {
    return engine_.constraints();
  }
  const model::Database& working_db() const { return engine_.working_db(); }

  /// The underlying conditioning engine (fold counters, memoization
  /// counters, shared artifacts).
  const engine::RankingEngine& engine() const { return engine_; }

 private:
  ComparisonOracle* oracle_;
  Options options_;
  engine::RankingEngine engine_;
  std::set<std::pair<model::ObjectId, model::ObjectId>> asked_;
  bool initialized_ = false;
  double initial_quality_ = 0.0;
};

}  // namespace ptk::crowd

#endif  // PTK_CROWD_ADAPTIVE_H_
