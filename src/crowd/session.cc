#include "crowd/session.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ptk::crowd {

namespace {

struct SessionMetrics {
  obs::Histogram* round_seconds;
  obs::Counter* rounds;
  obs::Counter* asked;
  obs::Counter* skipped;

  static const SessionMetrics& Get() {
    static const SessionMetrics metrics = {
        obs::GetHistogram("ptk_session_round_seconds",
                          "Latency of one CleaningSession round"),
        obs::GetCounter("ptk_session_rounds_total",
                        "Cleaning rounds completed"),
        obs::GetCounter("ptk_session_questions_asked_total",
                        "Pairs posted to the comparison oracle"),
        obs::GetCounter(
            "ptk_session_answers_skipped_total",
            "Answers discarded as contradictory with the accepted set"),
    };
    return metrics;
  }
};

engine::RankingEngine::Options EngineOptions(
    const CleaningSession::Options& options) {
  engine::RankingEngine::Options engine_options;
  engine_options.k = options.k;
  engine_options.order = options.order;
  engine_options.enumerator = options.enumerator;
  engine_options.semantics = options.semantics;
  return engine_options;
}

}  // namespace

CleaningSession::CleaningSession(const model::Database& db,
                                 core::PairSelector* selector,
                                 ComparisonOracle* oracle,
                                 const Options& options)
    : db_(&db),
      selector_(selector),
      oracle_(oracle),
      options_(options),
      engine_(db, EngineOptions(options)) {}

util::Status CleaningSession::Init() {
  if (initialized_) return util::Status::OK();
  const util::StatusOr<double> h = engine_.Quality();
  if (!h.ok()) {
    return h.status().WithContext("CleaningSession::Init: H(S_k)");
  }
  initial_quality_ = *h;
  current_quality_ = *h;
  initialized_ = true;
  return util::Status::OK();
}

util::StatusOr<CleaningSession::RoundReport> CleaningSession::RunRound(
    int quota) {
  if (!initialized_) {
    return util::Status::FailedPrecondition(
        "CleaningSession::RunRound called without a successful Init()");
  }
  if (quota <= 0) {
    return util::Status::InvalidArgument(
        "round quota must be positive, got " + std::to_string(quota));
  }
  const SessionMetrics& metrics = SessionMetrics::Get();
  obs::Span span("CleaningSession::RunRound");
  obs::ScopedTimer round_timer(metrics.round_seconds);
  RoundReport report;
  report.quality_before = current_quality_;

  // Over-request so that previously asked pairs can be filtered out. A
  // single batch can still come back short of `quota` unasked pairs (the
  // best-first stream may overlap heavily with asked_), so escalate the
  // request until the quota is met or the stream is truly exhausted.
  const int64_t n = db_->num_objects();
  const int64_t total_pairs = n * (n - 1) / 2;
  int64_t want = static_cast<int64_t>(quota) + asked_.size();
  bool escalated = false;
  for (;;) {
    want = std::min<int64_t>(want, std::numeric_limits<int>::max());
    std::vector<core::ScoredPair> candidates;
    util::Status s =
        selector_->SelectPairs(static_cast<int>(want), &candidates);
    if (!s.ok()) {
      // Selectors with a bounded candidate pool (e.g. RAND_K) reject
      // escalated over-requests outright; that is stream exhaustion, not
      // a caller error. First-attempt failures propagate untouched.
      if (escalated &&
          s.code() == util::Status::Code::kInvalidArgument) {
        break;
      }
      return s.WithContext("selector '" + selector_->name() + "'");
    }
    report.selected.clear();
    std::set<std::pair<model::ObjectId, model::ObjectId>> in_round;
    for (const core::ScoredPair& pair : candidates) {
      if (static_cast<int>(report.selected.size()) >= quota) break;
      const auto key = std::minmax(pair.a, pair.b);
      if (asked_.contains({key.first, key.second})) continue;
      // A duplicate inside one candidate batch must not be posted twice.
      if (!in_round.insert({key.first, key.second}).second) continue;
      report.selected.push_back(pair);
    }
    if (static_cast<int>(report.selected.size()) >= quota) break;
    // Exhausted only when the selector ran dry (returned fewer candidates
    // than requested) or every pair of the database has been observed —
    // a batch full of duplicates or already-asked pairs merely escalates.
    std::set<std::pair<model::ObjectId, model::ObjectId>> seen = asked_;
    for (const core::ScoredPair& pair : candidates) {
      const auto key = std::minmax(pair.a, pair.b);
      seen.insert({key.first, key.second});
    }
    if (static_cast<int64_t>(candidates.size()) < want ||
        static_cast<int64_t>(seen.size()) >= total_pairs) {
      break;
    }
    want *= 2;
    escalated = true;
  }
  if (static_cast<int>(report.selected.size()) < quota) {
    return util::Status::ResourceExhausted(
        "selector '" + selector_->name() + "' produced only " +
        std::to_string(report.selected.size()) +
        " unasked pairs for quota " + std::to_string(quota) + " (" +
        std::to_string(asked_.size()) + " of " +
        std::to_string(total_pairs) + " pairs already asked)");
  }

  for (const core::ScoredPair& pair : report.selected) {
    const auto key = std::minmax(pair.a, pair.b);
    asked_.insert({key.first, key.second});
    const bool a_greater = oracle_->Compare(pair.a, pair.b);
    const pw::PairwiseConstraint answer =
        a_greater ? pw::PairwiseConstraint{pair.b, pair.a}
                  : pw::PairwiseConstraint{pair.a, pair.b};
    // The engine discards answers that leave no surviving possible world
    // (Eq. 5 is undefined there); everything else is folded in. The batch
    // model never touches the working database — selection stays on the
    // original probabilities.
    engine::RankingEngine::FoldOutcome outcome;
    util::Status s =
        engine_.Fold(answer.smaller, answer.larger,
                     /*update_working=*/false, &outcome);
    if (!s.ok()) return s.WithContext("folding answer");
    if (outcome != engine::RankingEngine::FoldOutcome::kApplied) {
      std::string reason = "answer '" + std::to_string(answer.smaller) +
                           " < " + std::to_string(answer.larger) +
                           "' leaves zero surviving possible worlds";
      const std::vector<pw::PairwiseConstraint> chain =
          engine_.constraints().FindChain(answer.larger, answer.smaller);
      if (!chain.empty()) {
        reason += "; conflicts with accepted chain " +
                  pw::ConstraintSet::FormatChain(chain);
      }
      report.skipped.push_back(answer);
      report.skip_reasons.push_back(std::move(reason));
      continue;
    }
    report.answers.push_back(answer);
  }
  metrics.asked->Add(static_cast<int64_t>(report.selected.size()));
  metrics.skipped->Add(static_cast<int64_t>(report.skipped.size()));

  const util::StatusOr<double> h = engine_.Quality();
  if (!h.ok()) {
    return h.status().WithContext("evaluating H(S_k | answers)");
  }
  current_quality_ = *h;
  report.quality_after = *h;
  metrics.rounds->Add();
  return report;
}

}  // namespace ptk::crowd
