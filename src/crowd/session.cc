#include "crowd/session.h"

#include <algorithm>

namespace ptk::crowd {

CleaningSession::CleaningSession(const model::Database& db,
                                 core::PairSelector* selector,
                                 ComparisonOracle* oracle,
                                 const Options& options)
    : db_(&db),
      selector_(selector),
      oracle_(oracle),
      options_(options),
      evaluator_(db, options.k, options.order, options.enumerator) {
  double h = 0.0;
  const util::Status s = evaluator_.Quality(nullptr, &h);
  initial_quality_ = s.ok() ? h : 0.0;
  current_quality_ = initial_quality_;
}

util::Status CleaningSession::RunRound(int quota, RoundReport* report) {
  report->selected.clear();
  report->answers.clear();
  report->quality_before = current_quality_;

  // Over-request so that previously asked pairs can be filtered out.
  const int want = quota + static_cast<int>(asked_.size());
  std::vector<core::ScoredPair> candidates;
  util::Status s = selector_->SelectPairs(want, &candidates);
  if (!s.ok()) return s;
  for (const core::ScoredPair& pair : candidates) {
    if (static_cast<int>(report->selected.size()) >= quota) break;
    const auto key = std::minmax(pair.a, pair.b);
    if (asked_.contains({key.first, key.second})) continue;
    report->selected.push_back(pair);
  }
  if (static_cast<int>(report->selected.size()) < quota) {
    return util::Status::ResourceExhausted(
        "selector produced fewer unasked pairs than the quota");
  }

  for (const core::ScoredPair& pair : report->selected) {
    const auto key = std::minmax(pair.a, pair.b);
    asked_.insert({key.first, key.second});
    const bool a_greater = oracle_->Compare(pair.a, pair.b);
    const pw::PairwiseConstraint answer =
        a_greater ? pw::PairwiseConstraint{pair.b, pair.a}
                  : pw::PairwiseConstraint{pair.a, pair.b};
    // Discard answers that leave no surviving possible world (Eq. 5 is
    // undefined there); everything else is folded in.
    pw::ConstraintSet candidate = constraints_;
    candidate.Add(answer.smaller, answer.larger);
    if (evaluator_.ConstraintProbability(candidate) <= 0.0) {
      report->skipped.push_back(answer);
      continue;
    }
    constraints_ = std::move(candidate);
    report->answers.push_back(answer);
  }

  double h = 0.0;
  s = evaluator_.Quality(&constraints_, &h);
  if (!s.ok()) return s;
  current_quality_ = h;
  report->quality_after = h;
  return util::Status::OK();
}

}  // namespace ptk::crowd
