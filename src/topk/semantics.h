#ifndef PTK_TOPK_SEMANTICS_H_
#define PTK_TOPK_SEMANTICS_H_

#include <vector>

#include "model/database.h"
#include "pw/topk_distribution.h"
#include "pw/topk_enumerator.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk::topk {

/// The probabilistic top-k query semantics the paper builds on
/// (Section 2.2): U-Topk [29], U-kRanks [29], PT-k [15], Global-Topk [42],
/// and expected ranks [7]. These return *point answers*; the paper's
/// contribution starts from the observation that such answers can carry
/// high uncertainty, quantified by the entropy of the full distribution
/// that core::QualityEvaluator exposes.

/// An object with an associated score (probability or expected rank).
struct ScoredObject {
  model::ObjectId oid = model::kInvalidObject;
  double score = 0.0;
};

/// U-Topk's answer: the most probable top-k result and its probability.
struct UTopKAnswer {
  pw::ResultKey result;
  double probability = 0.0;
};

/// U-Topk: the most probable top-k result as a whole (rank-ordered for
/// kSensitive, an object set for kInsensitive) and its probability.
util::StatusOr<UTopKAnswer> UTopK(const model::Database& db, int k,
                                  pw::OrderMode order,
                                  const pw::EnumeratorOptions& options = {});

/// U-kRanks: for each rank i in [0, k), the object most likely to occupy
/// exactly that rank, with Pr(object at rank i). Exact, via the
/// Poisson-binomial rank profile; O(N * (k + active)).
util::StatusOr<std::vector<ScoredObject>> UKRanks(const model::Database& db,
                                                  int k);

/// PT-k: all objects whose probability of appearing in the top-k result is
/// at least `threshold`, ordered by descending probability.
std::vector<ScoredObject> PTk(const model::Database& db, int k,
                              double threshold);

/// Global-Topk: the k objects with the highest top-k membership
/// probability, descending.
std::vector<ScoredObject> GlobalTopK(const model::Database& db, int k);

/// Expected rank of every object: E[#objects ranked above it] across
/// possible worlds (0 = expected first). One O(N log N) scan.
std::vector<double> ExpectedRanks(const model::Database& db);

/// The k objects with the smallest expected rank, ascending by rank.
std::vector<ScoredObject> ExpectedRankTopK(const model::Database& db, int k);

}  // namespace ptk::topk

#endif  // PTK_TOPK_SEMANTICS_H_
