#include "topk/semantics.h"

#include <algorithm>
#include <cassert>

#include "rank/membership.h"
#include "rank/poisson_binomial.h"

namespace ptk::topk {

util::StatusOr<UTopKAnswer> UTopK(const model::Database& db, int k,
                                  pw::OrderMode order,
                                  const pw::EnumeratorOptions& options) {
  pw::TopKEnumerator enumerator(db);
  pw::TopKDistribution dist;
  util::Status s = enumerator.Enumerate(k, order, nullptr, options, &dist);
  if (!s.ok()) return s;
  if (dist.size() == 0) {
    return util::Status::Internal("empty top-k distribution");
  }
  const auto sorted = dist.SortedByProbDesc();
  return UTopKAnswer{sorted.front().first, sorted.front().second};
}

util::StatusOr<std::vector<ScoredObject>> UKRanks(const model::Database& db,
                                                  int k) {
  if (!db.finalized()) {
    return util::Status::InvalidArgument("database not finalized");
  }
  k = std::clamp(k, 1, db.num_objects());
  std::vector<ScoredObject> per_rank(k);

  // Scan ascending; at instance i of object o, Pr(o occupies rank r) +=
  // p_i * Pr(exactly r others rank above i). "Above" = strictly before
  // the instance's global position, owner excluded.
  const auto& sorted = db.sorted_instances();
  rank::PoissonBinomialTracker tracker;
  // Exact per-object prefix masses (see MembershipCalculator for why
  // these must be partial sums, not 1 - suffix).
  std::vector<std::vector<double>> prefix(db.num_objects());
  for (const auto& obj : db.objects()) {
    auto& p = prefix[obj.id()];
    p.assign(obj.num_instances() + 1, 0.0);
    for (int i = 0; i < obj.num_instances(); ++i) {
      p[i + 1] = p[i] + obj.instance(i).prob;
    }
    p.back() = 1.0;
  }

  std::vector<double> cumulative;
  std::vector<double> best(k, 0.0);
  std::vector<std::vector<double>> object_rank_prob(
      db.num_objects(), std::vector<double>(k, 0.0));
  for (const model::Instance& inst : sorted) {
    if (tracker.shift() >= k) break;  // deeper instances can't reach rank k
    const double q_old = prefix[inst.oid][inst.iid];
    tracker.CumulativeVectorExcluding(k - 1, q_old, &cumulative);
    for (int r = 0; r < k; ++r) {
      const double exactly =
          cumulative[r] - (r > 0 ? cumulative[r - 1] : 0.0);
      object_rank_prob[inst.oid][r] += inst.prob * exactly;
    }
    tracker.Update(q_old, prefix[inst.oid][inst.iid + 1]);
  }
  for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
    for (int r = 0; r < k; ++r) {
      if (object_rank_prob[o][r] > best[r]) {
        best[r] = object_rank_prob[o][r];
        per_rank[r] = ScoredObject{o, object_rank_prob[o][r]};
      }
    }
  }
  return per_rank;
}

std::vector<ScoredObject> PTk(const model::Database& db, int k,
                              double threshold) {
  rank::MembershipCalculator membership(db, k);
  std::vector<ScoredObject> out;
  for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
    const double p = membership.ObjectTopKProbability(o);
    if (p >= threshold) out.push_back(ScoredObject{o, p});
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredObject& a, const ScoredObject& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.oid < b.oid;
            });
  return out;
}

std::vector<ScoredObject> GlobalTopK(const model::Database& db, int k) {
  std::vector<ScoredObject> all = PTk(db, k, 0.0);
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

std::vector<double> ExpectedRanks(const model::Database& db) {
  assert(db.finalized());
  // E[rank(o)] = sum over o's instances of p_i * E[#others before pos(i)],
  // where E[#others before pos] = (total mass before pos) - (o's own mass
  // before pos). One ascending accumulation gives all values.
  std::vector<double> ranks(db.num_objects(), 0.0);
  std::vector<double> own_before(db.num_objects(), 0.0);
  double total_before = 0.0;
  for (const model::Instance& inst : db.sorted_instances()) {
    ranks[inst.oid] +=
        inst.prob * (total_before - own_before[inst.oid]);
    total_before += inst.prob;
    own_before[inst.oid] += inst.prob;
  }
  return ranks;
}

std::vector<ScoredObject> ExpectedRankTopK(const model::Database& db,
                                           int k) {
  const std::vector<double> ranks = ExpectedRanks(db);
  std::vector<ScoredObject> all;
  all.reserve(ranks.size());
  for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
    all.push_back(ScoredObject{o, ranks[o]});
  }
  std::sort(all.begin(), all.end(),
            [](const ScoredObject& a, const ScoredObject& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.oid < b.oid;
            });
  k = std::clamp(k, 0, static_cast<int>(all.size()));
  all.resize(k);
  return all;
}

}  // namespace ptk::topk
