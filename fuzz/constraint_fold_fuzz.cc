// Fuzz target for constraint folding and conditioned enumeration: an
// arbitrary sequence of pairwise answers over a fixed small database must
// either fold in (positive constraint probability, finite non-negative
// conditioned entropy) or be detected as infeasible — never crash, hang,
// or produce a non-finite quality. This is the serving path a malicious
// or merely confused crowd exercises (contradictory answers are the norm,
// not the exception).

#include <cmath>
#include <cstdint>

#include "core/quality.h"
#include "fuzz_require.h"
#include "model/database.h"
#include "pw/constraint.h"

namespace {

// Six objects with overlapping supports so pairwise orders are genuinely
// uncertain and multi-step contradictions are reachable.
const ptk::model::Database& FuzzDb() {
  static const ptk::model::Database* db = [] {
    auto* d = new ptk::model::Database();
    d->AddObject({{1.0, 0.5}, {5.0, 0.5}});
    d->AddObject({{2.0, 0.4}, {4.0, 0.6}});
    d->AddObject({{3.0, 0.7}, {6.0, 0.3}});
    d->AddObject({{2.5, 0.2}, {4.5, 0.8}});
    d->AddObject({{0.5, 0.6}, {5.5, 0.4}});
    d->AddObject({{3.5, 1.0}});
    PTK_FUZZ_REQUIRE(d->Finalize().ok());
    return d;
  }();
  return *db;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const ptk::model::Database& db = FuzzDb();
  const int n = db.num_objects();
  const ptk::core::QualityEvaluator evaluator(
      db, /*k=*/2, ptk::pw::OrderMode::kInsensitive);

  // Bytes pair up into answers (a < b); the accepted set follows the
  // session's folding rule. Cap the fold count to bound enumeration cost.
  ptk::pw::ConstraintSet accepted;
  int folds = 0;
  for (size_t i = 0; i + 1 < size && folds < 12; i += 2, ++folds) {
    const auto a = static_cast<ptk::model::ObjectId>(data[i] % n);
    const auto b = static_cast<ptk::model::ObjectId>(data[i + 1] % n);
    if (a == b) continue;
    ptk::pw::ConstraintSet candidate = accepted;
    candidate.Add(a, b);
    const double z = evaluator.ConstraintProbability(candidate);
    PTK_FUZZ_REQUIRE(std::isfinite(z));
    PTK_FUZZ_REQUIRE(z >= 0.0 && z <= 1.0 + 1e-9);
    if (z <= 0.0) {
      // Infeasible: the chain diagnostic must never crash, and a direct
      // reverse chain, when present, must start and end at the answer.
      const auto chain = accepted.FindChain(b, a);
      if (!chain.empty()) {
        PTK_FUZZ_REQUIRE(chain.front().smaller == b);
        PTK_FUZZ_REQUIRE(chain.back().larger == a);
        PTK_FUZZ_REQUIRE(
            !ptk::pw::ConstraintSet::FormatChain(chain).empty());
      }
      continue;
    }
    accepted = candidate;
    double h = 0.0;
    const ptk::util::Status s = evaluator.Quality(&accepted, &h);
    PTK_FUZZ_REQUIRE(s.ok());
    PTK_FUZZ_REQUIRE(std::isfinite(h));
    PTK_FUZZ_REQUIRE(h >= -1e-9);
  }
  return 0;
}
