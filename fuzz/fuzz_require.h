#ifndef PTK_FUZZ_FUZZ_REQUIRE_H_
#define PTK_FUZZ_FUZZ_REQUIRE_H_

#include <cstdio>
#include <cstdlib>

// assert() is compiled out under NDEBUG (the default RelWithDebInfo
// build), which would turn every fuzz invariant into a no-op. This macro
// is always on: a violated invariant aborts so the fuzzer records a crash.
#define PTK_FUZZ_REQUIRE(cond)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "fuzz invariant failed: %s at %s:%d\n",      \
                   #cond, __FILE__, __LINE__);                          \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#endif  // PTK_FUZZ_FUZZ_REQUIRE_H_
