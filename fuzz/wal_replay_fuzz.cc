// Fuzz target for the durability layer's readers: ParseWal and
// DecodeSnapshot must be total over arbitrary bytes — a crash-corrupted
// journal is the *expected* input of the recovery path, not an edge case.
// Invariants:
//   * ParseWal never reads out of bounds, and what it accepts is a
//     well-formed prefix: strictly increasing seq, known record types,
//     valid_bytes within the image.
//   * The valid prefix is a fixed point — re-parsing the first
//     valid_bytes reproduces exactly the same records with no torn tail
//     (this is what the tail-repair truncation relies on).
//   * Accepted records round-trip through EncodeWalFrame bit-identically.
//   * DecodeSnapshot either rejects the input or yields a snapshot whose
//     re-encoding decodes to an equal snapshot.

#include <cstdint>
#include <span>
#include <vector>

#include "fuzz_require.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> bytes(data, size);

  const ptk::persist::WalReadResult result = ptk::persist::ParseWal(bytes);
  PTK_FUZZ_REQUIRE(result.valid_bytes <= size);
  uint64_t last_seq = 0;
  for (const ptk::persist::WalRecord& record : result.records) {
    PTK_FUZZ_REQUIRE(record.seq > last_seq);
    last_seq = record.seq;
    PTK_FUZZ_REQUIRE(
        record.type == ptk::persist::WalRecord::Type::kAnswer ||
        record.type == ptk::persist::WalRecord::Type::kAsked);
  }

  // Tail repair truncates to valid_bytes and expects a clean re-read.
  const ptk::persist::WalReadResult again = ptk::persist::ParseWal(
      bytes.subspan(0, static_cast<size_t>(result.valid_bytes)));
  PTK_FUZZ_REQUIRE(again.records == result.records);
  PTK_FUZZ_REQUIRE(again.valid_bytes == result.valid_bytes);
  PTK_FUZZ_REQUIRE(!again.torn_tail);

  // Re-encode what was accepted: the writer's frames must parse back to
  // the same records (the journal is its own round-trip oracle).
  if (!result.records.empty()) {
    std::vector<uint8_t> image(ptk::persist::WalMagic().begin(),
                               ptk::persist::WalMagic().end());
    for (const ptk::persist::WalRecord& record : result.records) {
      const std::vector<uint8_t> frame =
          ptk::persist::EncodeWalFrame(record);
      image.insert(image.end(), frame.begin(), frame.end());
    }
    const ptk::persist::WalReadResult reparsed =
        ptk::persist::ParseWal(image);
    PTK_FUZZ_REQUIRE(reparsed.records == result.records);
    PTK_FUZZ_REQUIRE(!reparsed.torn_tail);
  }

  // The snapshot reader shares the framing helpers; drive it with the
  // same bytes. All-or-nothing: an accepted snapshot must re-encode to an
  // image that decodes equal.
  ptk::util::StatusOr<ptk::persist::SessionSnapshot> snapshot =
      ptk::persist::DecodeSnapshot(bytes);
  if (snapshot.ok()) {
    ptk::util::StatusOr<ptk::persist::SessionSnapshot> rerun =
        ptk::persist::DecodeSnapshot(
            ptk::persist::EncodeSnapshot(*snapshot));
    PTK_FUZZ_REQUIRE(rerun.ok());
    PTK_FUZZ_REQUIRE(*rerun == *snapshot);
  }
  return 0;
}
