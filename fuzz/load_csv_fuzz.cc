// Fuzz target for the strict serving-boundary parsers: arbitrary bytes
// through LoadCsvFromString (headered and headerless) and
// ParseAnswersFromString must either produce a finalized database that
// satisfies every model invariant, or a non-OK Status with a non-empty
// diagnostic — never a crash, hang, or silently corrupt database.

#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#include "data/answers.h"
#include "data/csv.h"
#include "fuzz_require.h"
#include "util/statusor.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;  // bound per-input parse time
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  for (const bool require_header : {true, false}) {
    ptk::data::CsvOptions options;
    options.require_header = require_header;
    const ptk::util::StatusOr<ptk::model::Database> db =
        ptk::data::LoadCsvFromString(text, options, "fuzz");
    if (!db.ok()) {
      PTK_FUZZ_REQUIRE(!db.status().message().empty());
      continue;
    }
    // Accepted input: the database must be fully valid.
    PTK_FUZZ_REQUIRE(db->finalized());
    PTK_FUZZ_REQUIRE(db->num_objects() > 0);
    for (const auto& obj : db->objects()) {
      PTK_FUZZ_REQUIRE(obj.num_instances() > 0);
      double total = 0.0;
      for (const auto& inst : obj.instances()) {
        PTK_FUZZ_REQUIRE(std::isfinite(inst.value));
        PTK_FUZZ_REQUIRE(inst.prob > 0.0);
        PTK_FUZZ_REQUIRE(inst.prob <= 1.0 + 1e-9);
        total += inst.prob;
      }
      PTK_FUZZ_REQUIRE(std::fabs(total - 1.0) < 1e-6);
    }
  }

  // The answers parser guards the same boundary; drive it with the same
  // bytes against a nominal 64-object database.
  const ptk::util::StatusOr<std::vector<ptk::data::ParsedAnswer>> answers =
      ptk::data::ParseAnswersFromString(text, 64, "fuzz");
  if (!answers.ok()) {
    PTK_FUZZ_REQUIRE(!answers.status().message().empty());
  } else {
    for (const auto& a : *answers) {
      PTK_FUZZ_REQUIRE(a.smaller >= 0 && a.smaller < 64);
      PTK_FUZZ_REQUIRE(a.larger >= 0 && a.larger < 64);
      PTK_FUZZ_REQUIRE(a.smaller != a.larger);
      PTK_FUZZ_REQUIRE(a.line_no >= 1);
    }
  }
  return 0;
}
