// Standalone driver for the fuzz entry points when libFuzzer is not
// available (e.g. gcc-only toolchains): replays every corpus file given
// on the command line (directories are walked recursively), and with
// `--seconds N` keeps exercising the target for N wall-clock seconds by
// replaying deterministic mutations (byte flips, insertions, truncations,
// splices) of the corpus inputs. Exit code 0 means no invariant aborted.
//
// With clang, build the targets with -fsanitize=fuzzer instead and this
// file is not compiled; the CLI here accepts corpus paths the same way
// libFuzzer does, so tools/check.sh works with either engine.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

using Input = std::vector<uint8_t>;

std::vector<Input> LoadCorpus(const std::vector<std::string>& paths) {
  std::vector<Input> corpus;
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(path);
    }
  }
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open corpus file %s\n", file.c_str());
      continue;
    }
    corpus.emplace_back(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
  }
  return corpus;
}

Input Mutate(const Input& base, std::mt19937_64& rng) {
  Input out = base;
  const int edits = 1 + static_cast<int>(rng() % 8);
  for (int e = 0; e < edits; ++e) {
    switch (rng() % 4) {
      case 0:  // flip or overwrite a byte
        if (!out.empty()) out[rng() % out.size()] = static_cast<uint8_t>(rng());
        break;
      case 1:  // insert a byte (commas, digits, and newlines favoured)
      {
        static const char kSpice[] = "0123456789,.-+einfa#\n\r ";
        const uint8_t b = (rng() % 2) ? static_cast<uint8_t>(rng())
                                      : static_cast<uint8_t>(
                                            kSpice[rng() % (sizeof(kSpice) - 1)]);
        out.insert(out.begin() + static_cast<long>(rng() % (out.size() + 1)),
                   b);
        break;
      }
      case 2:  // truncate
        if (!out.empty()) out.resize(rng() % out.size());
        break;
      case 3:  // duplicate a slice onto the end
        if (!out.empty()) {
          const size_t start = rng() % out.size();
          const size_t len = rng() % (out.size() - start) + 1;
          out.insert(out.end(), out.begin() + static_cast<long>(start),
                     out.begin() + static_cast<long>(start + len));
        }
        break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  long seconds = 0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atol(argv[++i]);
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  std::vector<Input> corpus = LoadCorpus(paths);
  if (corpus.empty()) corpus.push_back({});  // at least the empty input

  long runs = 0;
  for (const Input& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++runs;
  }

  if (seconds > 0) {
    std::mt19937_64 rng(0x9e3779b97f4a7c15ull);  // deterministic smoke run
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
    while (std::chrono::steady_clock::now() < deadline) {
      const Input mutated = Mutate(corpus[rng() % corpus.size()], rng);
      LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
      ++runs;
    }
  }
  std::printf("standalone fuzz driver: %ld runs over %zu corpus inputs, "
              "no invariant violations\n",
              runs, corpus.size());
  return 0;
}
