// Fuzz target for the binary wire format's readers (src/serve/codec.h):
// SplitFrame, DecodeRequest, and DecodeResponse must be total over
// arbitrary bytes — the server points them at an untrusted socket.
// Invariants:
//   * SplitFrame never reads out of bounds: it either wants more bytes
//     (consumed == 0), yields a frame fully inside the input, or rejects
//     an oversized length prefix — and it is deterministic.
//   * DecodeRequest accepts only requests that ValidateRequest admits,
//     and every accepted request round-trips through EncodeRequest to an
//     equal value (the codec is its own oracle).
//   * DecodeResponse acceptance round-trips the same way, bit-exactly in
//     the payload doubles (SameResponse compares them bitwise).
//   * The JSON codec is fed the same bytes: one line of arbitrary garbage
//     must decode-or-reject without crashing, and acceptance round-trips
//     byte-identically through its encoder.

#include <cstdint>

#include <string>
#include <string_view>

#include "fuzz_require.h"
#include "serve/codec.h"
#include "serve/message.h"
#include "util/status.h"
#include "util/statusor.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const ptk::serve::Codec& binary =
      ptk::serve::CodecFor(ptk::serve::WireFormat::kBinary);
  const ptk::serve::Codec& json =
      ptk::serve::CodecFor(ptk::serve::WireFormat::kJsonLines);

  // Walk the whole input as a frame stream, the way the server does.
  std::string_view rest = bytes;
  while (!rest.empty()) {
    ptk::util::StatusOr<ptk::serve::FrameSplit> split =
        binary.SplitFrame(rest);
    if (!split.ok() || !split->complete) break;
    PTK_FUZZ_REQUIRE(split->consumed > 0);
    PTK_FUZZ_REQUIRE(split->consumed <= rest.size());
    PTK_FUZZ_REQUIRE(split->frame.size() <= split->consumed);

    ptk::serve::Request request;
    if (binary.DecodeRequest(split->frame, &request).ok()) {
      PTK_FUZZ_REQUIRE(ptk::serve::ValidateRequest(request).ok());
      const std::string reencoded = binary.EncodeRequest(request);
      ptk::util::StatusOr<ptk::serve::FrameSplit> refr =
          binary.SplitFrame(reencoded);
      PTK_FUZZ_REQUIRE(refr.ok() && refr->complete);
      ptk::serve::Request again;
      PTK_FUZZ_REQUIRE(binary.DecodeRequest(refr->frame, &again).ok());
      PTK_FUZZ_REQUIRE(again == request);
    }

    ptk::util::StatusOr<ptk::serve::Response> response =
        binary.DecodeResponse(split->frame);
    if (response.ok()) {
      const std::string reencoded = binary.EncodeResponse(*response);
      ptk::util::StatusOr<ptk::serve::FrameSplit> refr =
          binary.SplitFrame(reencoded);
      PTK_FUZZ_REQUIRE(refr.ok() && refr->complete);
      ptk::util::StatusOr<ptk::serve::Response> again =
          binary.DecodeResponse(refr->frame);
      PTK_FUZZ_REQUIRE(again.ok());
      PTK_FUZZ_REQUIRE(ptk::serve::SameResponse(*again, *response));
    }
    rest.remove_prefix(split->consumed);
  }

  // Same bytes as one JSON line (strip at the first newline, the line
  // framing the JSON codec would apply).
  const std::string_view line = bytes.substr(0, bytes.find('\n'));
  ptk::serve::Request request;
  if (json.DecodeRequest(line, &request).ok()) {
    PTK_FUZZ_REQUIRE(ptk::serve::ValidateRequest(request).ok());
    const std::string encoded = json.EncodeRequest(request);
    PTK_FUZZ_REQUIRE(!encoded.empty() && encoded.back() == '\n');
    ptk::serve::Request again;
    PTK_FUZZ_REQUIRE(
        json.DecodeRequest(
                std::string_view(encoded).substr(0, encoded.size() - 1),
                &again)
            .ok());
    PTK_FUZZ_REQUIRE(again == request);
  }
  ptk::util::StatusOr<ptk::serve::Response> response =
      json.DecodeResponse(line);
  if (response.ok()) {
    // JSON doubles round-trip as bytes, not bits: re-encoding the decoded
    // value must reproduce the encoder's canonical form exactly once
    // stabilized (encode . decode is idempotent on its own output).
    const std::string once = json.EncodeResponse(*response);
    ptk::util::StatusOr<ptk::serve::Response> stable = json.DecodeResponse(
        std::string_view(once).substr(0, once.size() - 1));
    PTK_FUZZ_REQUIRE(stable.ok());
    PTK_FUZZ_REQUIRE(json.EncodeResponse(*stable) == once);
  }
  return 0;
}
